/**
 * @file
 * Large-code-footprint kernels: hundreds of distinct static load
 * sites (gcc/perl-like). These put genuine capacity pressure on the
 * predictor tables, which is the regime where the paper's smart
 * training and heterogeneous sizing pay off (Sections V-C, V-D).
 */

#include <memory>
#include <string>

#include "common/bitutils.hh"
#include "trace/kernels/register.hh"
#include "trace/synth_kernel.hh"
#include "trace/workloads.hh"

namespace lvpsim
{
namespace trace
{

namespace
{

constexpr RegId r1 = 1, r2 = 2, r3 = 3, r4 = 4, r5 = 5, r6 = 6;

/**
 * 64 small "functions" called in random order. Each has three
 * distinct static loads:
 *   - a constant global (Pattern-1, LVP),
 *   - its private walk cursor (a stride-1 *value* sequence - EVES's
 *     E-Stride territory, opaque to the composite's components), and
 *   - the data word at the cursor (strided address, SAP).
 * With 64 x 3 load sites plus call/return traffic, small predictor
 * tables are oversubscribed several times over.
 */
class BigCodeKernel : public SynthKernel
{
  public:
    BigCodeKernel() : SynthKernel("big_code") {}

  protected:
    static constexpr unsigned numFuncs = 64;
    static constexpr Addr globalsBase = 0x80000000;
    static constexpr Addr cursorsBase = 0x80010000;
    static constexpr Addr arraysBase = 0x80100000;
    static constexpr std::size_t arrayLen = 4096; ///< 8B elements

    void
    init(Asm &a) const override
    {
        for (unsigned f = 0; f < numFuncs; ++f) {
            a.mem().write(globalsBase + f * 8, 0x60a1 + f * 0x11,
                          8);
            const Addr arr = arraysBase + Addr(f) * arrayLen * 8;
            a.mem().write(cursorsBase + f * 8, arr, 8);
            for (std::size_t i = 0; i < arrayLen; ++i)
                a.mem().write(arr + i * 8, mix64(arr + i * 8) | 1,
                              8);
        }
    }

    void
    body(Asm &a) const override
    {
        a.imm("acc", r5, 0);
        while (!a.done()) {
            const unsigned f = unsigned(a.rng().below(numFuncs));
            const std::string fs = std::to_string(f);
            a.call("call_" + fs, "fn_" + fs);
            a.nop("fn_" + fs);
            // Constant global (P1).
            a.imm("gb_" + fs, r1, globalsBase + f * 8);
            a.load("ldc_" + fs, r2, r1, 0, 8);
            // Private cursor: value strides by 8 every visit.
            a.imm("cb_" + fs, r3, cursorsBase + f * 8);
            Value cur = a.load("ldu_" + fs, r4, r3, 0, 8);
            // Data at the cursor (strided address per site).
            a.load("ldd_" + fs, r6, r4, 0, 8);
            a.add("sum_" + fs, r5, r5, r6);
            a.add("mix_" + fs, r5, r5, r2);
            // Advance (wrap at the array end).
            const Addr arr =
                arraysBase + Addr(f) * arrayLen * 8;
            if (cur + 8 >= arr + arrayLen * 8)
                a.imm("wrap_" + fs, r4, arr);
            else
                a.addi("adv_" + fs, r4, r4, 8);
            a.store("stu_" + fs, r4, r3, 0, 8);
            a.ret("ret_" + fs);
        }
    }
};

/**
 * A deep call tree over 32 distinct leaf routines, each reloading its
 * own spilled state (perlbench-like). Exercises the RAS and adds
 * another ~100 static loads of mostly Pattern-1/Pattern-3 flavour.
 */
class CallTreeKernel : public SynthKernel
{
  public:
    CallTreeKernel() : SynthKernel("call_tree") {}

  protected:
    static constexpr unsigned numLeaves = 32;
    static constexpr Addr stateBase = 0x81000000;

    void
    init(Asm &a) const override
    {
        for (unsigned l = 0; l < numLeaves; ++l) {
            a.mem().write(stateBase + l * 32, 0x5a11 + l * 7, 8);
            a.mem().write(stateBase + l * 32 + 8, l, 8);
            a.mem().write(stateBase + l * 32 + 16,
                          (l * 37) % 100, 8);
        }
    }

    void
    body(Asm &a) const override
    {
        a.imm("acc", r5, 0);
        while (!a.done()) {
            // A biased random walk picks 4 leaves per round.
            for (int hop = 0; hop < 4 && !a.done(); ++hop) {
                const unsigned l = unsigned(
                    a.rng().bernoulli(0.6)
                        ? a.rng().below(4)      // hot leaves
                        : a.rng().below(numLeaves));
                const std::string ls = std::to_string(l);
                a.call("call_" + ls, "leaf_" + ls);
                a.nop("leaf_" + ls);
                a.imm("sb_" + ls, r1, stateBase + l * 32);
                a.load("ld_a_" + ls, r2, r1, 0, 8);
                a.load("ld_b_" + ls, r3, r1, 8, 8);
                a.load("ld_c_" + ls, r4, r1, 16, 8);
                a.add("s1_" + ls, r5, r5, r2);
                a.add("s2_" + ls, r5, r5, r3);
                a.add("s3_" + ls, r5, r5, r4);
                a.ret("ret_" + ls);
            }
            a.branch("round", true, "acc", r5);
        }
    }
};

} // anonymous namespace

void
registerBigCodeKernels(WorkloadRegistry &reg)
{
    reg.add("big_code",
            "64 functions x 3 load sites, random calls (capacity)",
            [] { return std::make_unique<BigCodeKernel>(); });
    reg.add("call_tree",
            "32 leaves x 3 state loads, biased call walk (P1/RAS)",
            [] { return std::make_unique<CallTreeKernel>(); });
}

} // namespace trace
} // namespace lvpsim
