/**
 * @file
 * Irregular kernels: data-dependent addresses and values that are hard
 * or impossible to predict. These populate the unpredictable tail of
 * the paper's Figure 2 breakdown and exercise the accuracy monitors
 * (a predictor that guesses here pays the flush cost).
 */

#include <algorithm>
#include <memory>
#include <vector>

#include "common/bitutils.hh"

#include "trace/kernels/register.hh"
#include "trace/synth_kernel.hh"
#include "trace/workloads.hh"

namespace lvpsim
{
namespace trace
{

namespace
{

constexpr RegId r1 = 1, r2 = 2, r3 = 3, r4 = 4, r5 = 5, r6 = 6, r7 = 7,
                r8 = 8;

/**
 * Circular linked-list traversal (mcf-like). The list is static, so
 * node pointers/payloads repeat every lap; short per-node flag branches
 * put node identity into the path history, making a slice of the loads
 * context-predictable (Pattern-3).
 */
class PointerChaseKernel : public SynthKernel
{
  public:
    PointerChaseKernel() : SynthKernel("pointer_chase") {}

  protected:
    static constexpr Addr base = 0x40000000;
    static constexpr std::size_t numNodes = 48;
    static constexpr unsigned nodeSize = 32; ///< next, payload, flag

    void
    init(Asm &a) const override
    {
        // Shuffled circular order so addresses are stride-free.
        std::vector<std::size_t> order(numNodes);
        for (std::size_t i = 0; i < numNodes; ++i)
            order[i] = i;
        for (std::size_t i = numNodes - 1; i > 0; --i)
            std::swap(order[i], order[a.rng().below(i + 1)]);
        for (std::size_t i = 0; i < numNodes; ++i) {
            const Addr node = base + order[i] * nodeSize;
            const Addr next =
                base + order[(i + 1) % numNodes] * nodeSize;
            a.mem().write(node + 0, next, 8);
            a.mem().write(node + 8, 0x900d + order[i] * 13, 8);
            a.mem().write(node + 16, order[i] % 3 == 0 ? 1 : 0, 8);
        }
    }

    void
    body(Asm &a) const override
    {
        a.imm("head", r1, base);
        a.imm("acc", r2, 0);
        while (!a.done()) {
            Value next = a.load("ld_next", r1, r1, 0, 8);
            a.load("ld_pay", r3, r1, 8, 8);
            Value flag = a.load("ld_flag", r4, r1, 16, 8);
            a.add("sum", r2, r2, r3);
            a.branch("br_flag", flag != 0, "hot", r4);
            if (flag != 0) {
                a.nop("hot");
                a.addi("hot2", r2, r2, 7);
            }
            a.branch("br", true, "ld_next", r1);
            (void)next;
        }
    }
};

/** Binary search tree lookups with random keys (unpredictable). */
class BinaryTreeKernel : public SynthKernel
{
  public:
    BinaryTreeKernel() : SynthKernel("binary_tree") {}

  protected:
    static constexpr Addr base = 0x41000000;
    static constexpr std::size_t numNodes = 1023; ///< perfect depth 10
    static constexpr unsigned nodeSize = 32; ///< key, left, right, val

    Addr nodeAddr(std::size_t idx) const { return base + idx * nodeSize; }

    void
    init(Asm &a) const override
    {
        // Heap-indexed balanced BST over keys 1..numNodes: node i holds
        // the key that keeps in-order = sorted.
        buildKeys(a, 0, 1, numNodes);
        for (std::size_t i = 0; i < numNodes; ++i) {
            const std::size_t l = 2 * i + 1, r = 2 * i + 2;
            a.mem().write(nodeAddr(i) + 8,
                          l < numNodes ? nodeAddr(l) : 0, 8);
            a.mem().write(nodeAddr(i) + 16,
                          r < numNodes ? nodeAddr(r) : 0, 8);
            a.mem().write(nodeAddr(i) + 24, a.rng().next() & 0xffff, 8);
        }
    }

    void
    buildKeys(Asm &a, std::size_t idx, std::uint64_t lo,
              std::uint64_t hi) const
    {
        if (idx >= numNodes || lo > hi)
            return;
        const std::uint64_t mid = lo + (hi - lo) / 2;
        a.mem().write(nodeAddr(idx) + 0, mid, 8);
        if (mid > lo)
            buildKeys(a, 2 * idx + 1, lo, mid - 1);
        if (mid < hi)
            buildKeys(a, 2 * idx + 2, mid + 1, hi);
    }

    void
    body(Asm &a) const override
    {
        while (!a.done()) {
            const std::uint64_t key = 1 + a.rng().below(numNodes);
            a.imm("key", r2, key);
            a.imm("cur", r1, base);
            while (a.reg(r1) != 0) {
                Value nk = a.load("ld_key", r3, r1, 0, 8);
                if (nk == key) {
                    a.load("ld_val", r4, r1, 24, 8);
                    a.branch("br_hit", true, "key", r3);
                    break;
                }
                const bool go_left = key < nk;
                a.branch("br_cmp", go_left, "go_l", r3);
                if (go_left)
                    a.load("ld_l", r1, r1, 8, 8);
                else
                    a.load("ld_r", r1, r1, 16, 8);
                a.branch("br_null", a.reg(r1) == 0, "key", r1);
            }
        }
    }
};

/** Open-addressing hash probes with random keys (unpredictable). */
class HashProbeKernel : public SynthKernel
{
  public:
    HashProbeKernel() : SynthKernel("hash_probe") {}

  protected:
    static constexpr Addr base = 0x42000000;
    static constexpr std::size_t numSlots = 1 << 14;
    static constexpr unsigned slotSize = 16; ///< key, value

    void
    init(Asm &a) const override
    {
        // ~60% load factor; same double-hash probing as lookups.
        for (std::size_t i = 0; i < (numSlots * 3) / 5; ++i) {
            const std::uint64_t key = 1 + (a.rng().next() >> 16);
            std::size_t slot = key % numSlots;
            const std::size_t step = 1 + key % 5;
            while (a.mem().read(base + slot * slotSize, 8) != 0)
                slot = (slot + step) % numSlots;
            a.mem().write(base + slot * slotSize, key, 8);
            a.mem().write(base + slot * slotSize + 8, key * 3, 8);
        }
    }

    void
    body(Asm &a) const override
    {
        a.imm("tb", r1, base);
        while (!a.done()) {
            const std::uint64_t key = 1 + (a.rng().next() >> 16);
            a.imm("key", r2, key);
            std::size_t slot = key % numSlots;
            const std::size_t step = 1 + key % 5; // double hashing
            for (unsigned probe = 0; probe < 32; ++probe) {
                a.imm("soff", r3, slot * slotSize);
                Value sk = a.load("ld_key", r4, r1, 0, 8, r3);
                if (sk == 0) {
                    a.branch("br_empty", true, "key", r4);
                    break;
                }
                if (sk == key) {
                    a.load("ld_val", r5, r1, 8, 8, r3);
                    a.branch("br_hit", true, "key", r4);
                    break;
                }
                a.branch("br_next", true, "soff", r4);
                slot = (slot + step) % numSlots;
            }
        }
    }
};

/** Byte histogram with a skewed input distribution. */
class HistogramKernel : public SynthKernel
{
  public:
    HistogramKernel() : SynthKernel("histogram") {}

  protected:
    static constexpr Addr inBase = 0x43000000;
    static constexpr Addr binBase = 0x43100000;
    static constexpr std::size_t inLen = 64 * 1024;

    void
    init(Asm &a) const override
    {
        // Zipf-ish skew: half the bytes come from 8 hot values.
        for (std::size_t i = 0; i < inLen; ++i) {
            const bool hot = a.rng().bernoulli(0.5);
            const std::uint8_t b =
                hot ? std::uint8_t(a.rng().below(8) * 31)
                    : std::uint8_t(a.rng().below(256));
            a.mem().write(inBase + i, b, 1);
        }
    }

    void
    body(Asm &a) const override
    {
        a.imm("pi", r1, inBase);
        a.imm("pb", r2, binBase);
        for (std::size_t i = 0; i < inLen && !a.done(); ++i) {
            a.load("ld_byte", r3, r1, 0, 1);
            a.shl("boff", r4, r3, 3);
            a.load("ld_bin", r5, r2, 0, 8, r4);
            a.addi("binc", r5, r5, 1);
            a.store("st_bin", r5, r2, 0, 8, r4);
            a.addi("pinc", r1, r1, 1);
            a.branch("br", i + 1 < inLen, "ld_byte", r1);
        }
    }
};

/** Repeated quicksorts of freshly shuffled 1K-element arrays. */
class SortQsortKernel : public SynthKernel
{
  public:
    SortQsortKernel() : SynthKernel("sort_qsort") {}

  protected:
    static constexpr Addr base = 0x44000000;
    static constexpr std::size_t numElems = 1024;

    void
    body(Asm &a) const override
    {
        // Refill with random data (emitted stores).
        a.imm("pf", r1, base);
        for (std::size_t i = 0; i < numElems && !a.done(); ++i) {
            a.imm("rv", r2, a.rng().below(1 << 16));
            a.store("st_fill", r2, r1, 0, 8);
            a.addi("pfi", r1, r1, 8);
            a.branch("brf", i + 1 < numElems, "rv", r1);
        }
        // Iterative quicksort (explicit stack in kernel C++).
        std::vector<std::pair<std::int64_t, std::int64_t>> stack;
        // Both halves are pushed unordered, so the worst-case live
        // depth is linear, not logarithmic.
        stack.reserve(numElems);
        stack.emplace_back(0, std::int64_t(numElems) - 1);
        while (!stack.empty() && !a.done()) {
            auto [lo, hi] = stack.back();
            stack.pop_back();
            if (lo >= hi)
                continue;
            a.imm("plo", r1, base + lo * 8);
            Value pivot = a.load("ld_pivot", r2, r1, 0, 8);
            std::int64_t i = lo, j = hi;
            while (i <= j && !a.done()) {
                Value vi;
                do {
                    a.imm("pi2", r3, base + i * 8);
                    vi = a.load("ld_i", r4, r3, 0, 8);
                    a.branch("br_i", vi < pivot, "pi2", r4);
                    if (vi < pivot)
                        ++i;
                } while (vi < pivot && !a.done());
                Value vj;
                do {
                    a.imm("pj2", r5, base + j * 8);
                    vj = a.load("ld_j", r6, r5, 0, 8);
                    a.branch("br_j", vj > pivot, "pj2", r6);
                    if (vj > pivot)
                        --j;
                } while (vj > pivot && !a.done());
                a.branch("br_sw", i <= j, "pi2", r4);
                if (i <= j) {
                    a.store("st_i", r6, r3, 0, 8);
                    a.store("st_j", r4, r5, 0, 8);
                    ++i;
                    --j;
                }
            }
            stack.emplace_back(lo, j);
            stack.emplace_back(i, hi);
        }
    }
};

/** Table-driven CRC over a text-like stream (zlib-like). */
class CrcStreamKernel : public SynthKernel
{
  public:
    CrcStreamKernel() : SynthKernel("crc_stream") {}

  protected:
    static constexpr Addr tabBase = 0x45000000;
    static constexpr Addr inBase = 0x45100000;
    static constexpr std::size_t inLen = 32 * 1024;

    void
    init(Asm &a) const override
    {
        for (unsigned i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xedb88320u ^ (c >> 1) : (c >> 1);
            a.mem().write(tabBase + i * 4, c, 4);
        }
        // ASCII-ish input: mostly lowercase letters and spaces.
        for (std::size_t i = 0; i < inLen; ++i) {
            const std::uint8_t b =
                a.rng().bernoulli(0.15)
                    ? 0x20
                    : std::uint8_t(0x61 + a.rng().below(26));
            a.mem().write(inBase + i, b, 1);
        }
    }

    void
    body(Asm &a) const override
    {
        a.imm("pt", r1, tabBase);
        a.imm("pi", r2, inBase);
        a.imm("crc", r3, 0xffffffff);
        for (std::size_t i = 0; i < inLen && !a.done(); ++i) {
            a.load("ld_byte", r4, r2, 0, 1);
            a.xorOp("x1", r5, r3, r4);
            a.imm("m255", r6, 0xff);
            a.andOp("x2", r5, r5, r6);
            a.shl("toff", r5, r5, 2);
            a.load("ld_tab", r7, r1, 0, 4, r5);
            a.shr("c8", r3, r3, 8);
            a.xorOp("cx", r3, r3, r7);
            a.addi("pinc", r2, r2, 1);
            a.branch("br", i + 1 < inLen, "ld_byte", r2);
        }
    }
};

/** Random reads over a 64MB footprint: cache-miss heavy. */
class ColdMissesKernel : public SynthKernel
{
  public:
    ColdMissesKernel() : SynthKernel("cold_misses") {}

  protected:
    static constexpr Addr base = 0x50000000;
    static constexpr std::size_t span = 64ull << 20;

    /** Lazily materialize data so reads see address-dependent (and
     *  thus unpredictable) values instead of zero-fill. */
    static void
    materialize(Asm &a, Addr addr)
    {
        if (a.mem().read(addr, 8) == 0)
            a.mem().write(addr, mix64(addr) | 1, 8);
    }

    void
    body(Asm &a) const override
    {
        a.imm("acc", r2, 0);
        while (!a.done()) {
            // A short strided burst (predictable addresses that miss).
            const Addr burst =
                base + (a.rng().below(span / 4096)) * 4096;
            a.imm("bp", r1, burst);
            for (unsigned i = 0; i < 8; ++i) {
                materialize(a, a.reg(r1));
                a.load("ld_burst", r3, r1, 0, 8);
                a.add("acc1", r2, r2, r3);
                a.addi("bpi", r1, r1, 256);
                a.branch("brb", i + 1 < 8, "ld_burst", r1);
            }
            // Then pure random pointer dives.
            for (unsigned i = 0; i < 4; ++i) {
                a.imm("rp", r4, base + (a.rng().below(span / 8)) * 8);
                materialize(a, a.reg(r4));
                a.load("ld_rand", r5, r4, 0, 8);
                a.add("acc2", r2, r2, r5);
                a.branch("brr", i + 1 < 4, "rp", r4);
            }
        }
    }
};

/** Branch-heavy control with moderate, mostly-predictable loads. */
class BranchyMixKernel : public SynthKernel
{
  public:
    BranchyMixKernel() : SynthKernel("branchy_mix") {}

  protected:
    static constexpr Addr base = 0x46000000;
    static constexpr std::size_t numElems = 16 * 1024;

    void
    init(Asm &a) const override
    {
        for (std::size_t i = 0; i < numElems; ++i)
            a.mem().write(base + i * 4, a.rng().below(100), 4);
    }

    void
    body(Asm &a) const override
    {
        a.imm("pb", r1, base);
        a.imm("acc", r2, 0);
        for (std::size_t i = 0; i < numElems && !a.done(); ++i) {
            Value v = a.load("ld", r3, r1, 0, 4);
            // 50/50 data-dependent branch: hard for TAGE.
            a.branch("br_odd", (v & 1) != 0, "odd", r3);
            if (v & 1) {
                a.nop("odd");
                a.addi("inc3", r2, r2, 3);
            } else {
                a.addi("inc1", r2, r2, 1);
            }
            // Biased branch: easy for TAGE.
            a.branch("br_bias", v < 90, "cont", r3);
            if (v >= 90)
                a.mul("rare", r2, r2, r3);
            a.nop("cont");
            a.addi("pi", r1, r1, 4);
            a.branch("br", i + 1 < numElems, "ld", r1);
        }
    }
};

} // anonymous namespace

void
registerIrregularKernels(WorkloadRegistry &reg)
{
    reg.add("pointer_chase", "shuffled circular list chase (P3/U)",
            [] { return std::make_unique<PointerChaseKernel>(); });
    reg.add("binary_tree", "balanced BST random lookups (U)",
            [] { return std::make_unique<BinaryTreeKernel>(); });
    reg.add("hash_probe", "open-addressing probes, random keys (U)",
            [] { return std::make_unique<HashProbeKernel>(); });
    reg.add("histogram", "byte histogram, skewed input (P2+U)",
            [] { return std::make_unique<HistogramKernel>(); });
    reg.add("sort_qsort", "repeated quicksort of random arrays (U)",
            [] { return std::make_unique<SortQsortKernel>(); });
    reg.add("crc_stream", "table-driven CRC over text (P2+U)",
            [] { return std::make_unique<CrcStreamKernel>(); });
    reg.add("cold_misses", "64MB random footprint, miss heavy (U)",
            [] { return std::make_unique<ColdMissesKernel>(); });
    reg.add("branchy_mix", "branch-heavy control, easy loads (P2)",
            [] { return std::make_unique<BranchyMixKernel>(); });
}

} // namespace trace
} // namespace lvpsim
