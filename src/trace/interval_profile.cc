#include "trace/interval_profile.hh"

#include <bit>

#include "common/logging.hh"

namespace lvpsim
{
namespace trace
{

namespace
{

/** FNV-1a over the 8 little-endian bytes of a 64-bit word; the same
 *  hash family trace_io uses for trace content identity. */
std::uint64_t
fnv1a64(std::uint64_t x)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (int i = 0; i < 8; ++i) {
        h ^= (x >> (8 * i)) & 0xffu;
        h *= 0x100000001b3ull;
    }
    return h;
}

/** Bucket a load-address delta by log2 magnitude: 0 for a repeat
 *  (delta 0), else 1 + floor(log2 |delta|), clamped to the last
 *  bucket. Sign is ignored — locality, not direction. */
std::size_t
strideBucket(std::uint64_t prev, std::uint64_t cur)
{
    const std::uint64_t d = cur >= prev ? cur - prev : prev - cur;
    if (d == 0)
        return 0;
    const std::size_t b = std::size_t(std::bit_width(d));
    return b < IntervalSignature::strideDims
               ? b
               : IntervalSignature::strideDims - 1;
}

/** Normalize one feature group to a fixed-point sum of fixedOne
 *  (integer floor division; an all-zero group stays zero). */
template <std::size_t N>
void
normalizeGroup(const std::array<std::uint64_t, N> &raw,
               std::uint32_t *out)
{
    std::uint64_t sum = 0;
    for (std::uint64_t c : raw)
        sum += c;
    if (sum == 0) {
        for (std::size_t i = 0; i < N; ++i)
            out[i] = 0;
        return;
    }
    for (std::size_t i = 0; i < N; ++i)
        out[i] = std::uint32_t(
            (raw[i] * std::uint64_t(IntervalSignature::fixedOne)) /
            sum);
}

} // anonymous namespace

IntervalProfiler::IntervalProfiler(std::uint64_t interval_len)
    : intervalLen(interval_len)
{
    lvp_assert(interval_len > 0,
               "interval length must be positive");
    profile.intervalLen = interval_len;
}

void
IntervalProfiler::observe(const MicroOp &op)
{
    ++pcCounts[fnv1a64(op.pc >> 6) % IntervalSignature::pcDims];
    if (op.isPredictableLoad()) {
        if (haveLastLoad)
            ++strideCounts[strideBucket(lastLoadAddr, op.effAddr)];
        lastLoadAddr = op.effAddr;
        haveLastLoad = true;
        ++loadsInInterval;
    }
    ++instrsInInterval;
    ++profile.totalInstructions;
    if (instrsInInterval == intervalLen)
        closeInterval();
}

void
IntervalProfiler::closeInterval()
{
    IntervalSignature sig;
    normalizeGroup(pcCounts, sig.v.data());
    normalizeGroup(strideCounts,
                   sig.v.data() + IntervalSignature::pcDims);
    sig.instructions = instrsInInterval;
    sig.loads = loadsInInterval;
    profile.intervals.push_back(sig);

    pcCounts.fill(0);
    strideCounts.fill(0);
    instrsInInterval = 0;
    loadsInInterval = 0;
    // lastLoadAddr deliberately carries across the boundary: the
    // first delta of an interval is real locality information.
}

IntervalProfile
IntervalProfiler::finish()
{
    if (instrsInInterval > 0)
        closeInterval();
    IntervalProfile out = std::move(profile);
    profile = IntervalProfile{};
    profile.intervalLen = intervalLen;
    lastLoadAddr = 0;
    haveLastLoad = false;
    return out;
}

void
IntervalProfiler::saveState(Snapshot &s) const
{
    s.pcCounts = pcCounts;
    s.strideCounts = strideCounts;
    s.instrsInInterval = instrsInInterval;
    s.loadsInInterval = loadsInInterval;
    s.lastLoadAddr = lastLoadAddr;
    s.haveLastLoad = haveLastLoad;
    s.profile = profile;
}

void
IntervalProfiler::restoreState(const Snapshot &s)
{
    pcCounts = s.pcCounts;
    strideCounts = s.strideCounts;
    instrsInInterval = s.instrsInInterval;
    loadsInInterval = s.loadsInInterval;
    lastLoadAddr = s.lastLoadAddr;
    haveLastLoad = s.haveLastLoad;
    profile = s.profile;
}

IntervalProfile
profileTrace(const std::vector<MicroOp> &ops,
             std::uint64_t interval_len)
{
    IntervalProfiler p(interval_len);
    for (const MicroOp &op : ops)
        p.observe(op);
    return p.finish();
}

IntervalProfile
profileTrace(TraceSource &src, std::uint64_t interval_len)
{
    IntervalProfiler p(interval_len);
    src.reset();
    MicroOp op;
    while (src.next(op))
        p.observe(op);
    return p.finish();
}

} // namespace trace
} // namespace lvpsim
