/**
 * @file
 * Binary trace file I/O.
 *
 * Traces are regenerable from (kernel, seed), but a file format lets
 * users archive runs, diff traces across versions, and feed externally
 * produced traces (e.g. converted CVP-1 traces) into the pipeline.
 *
 * Format: a 16-byte header (magic "LVPT", version, count) followed by
 * fixed-size little-endian records, one per MicroOp.
 */

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/instruction.hh"

namespace lvpsim
{
namespace trace
{

/** Current trace file format version. */
constexpr std::uint32_t traceFormatVersion = 1;

/** Serialize @p ops to @p os. Returns false on I/O error. */
bool writeTrace(std::ostream &os, const std::vector<MicroOp> &ops);

/**
 * Deserialize a trace from @p is.
 * @param[out] ops replaced with the file contents
 * @param[out] error human-readable reason on failure
 */
bool readTrace(std::istream &is, std::vector<MicroOp> &ops,
               std::string *error = nullptr);

/** Convenience file wrappers (fatal-free; return false on error). */
bool saveTraceFile(const std::string &path,
                   const std::vector<MicroOp> &ops);
bool loadTraceFile(const std::string &path,
                   std::vector<MicroOp> &ops,
                   std::string *error = nullptr);

} // namespace trace
} // namespace lvpsim

