#include "trace/asm_emitter.hh"

#include "common/logging.hh"

namespace lvpsim
{
namespace trace
{

Asm::Asm(std::vector<MicroOp> &out, std::size_t max_ops,
         std::uint64_t seed)
    : buf(out), maxOps(max_ops), rngState(seed)
{
    buf.reserve(max_ops);
    callStack.reserve(64); // deeper nesting than any kernel emits
}

Addr
Asm::pcOf(const std::string &site)
{
    auto [it, inserted] = sites.try_emplace(site,
                                            unsigned(sites.size()));
    (void)inserted;
    return codeBase + Addr(it->second) * 4;
}

void
Asm::push(MicroOp op)
{
    if (buf.size() < maxOps)
        buf.push_back(op);
}

MicroOp
Asm::make(const std::string &site, OpClass cls)
{
    MicroOp op;
    op.pc = pcOf(site);
    op.cls = cls;
    return op;
}

void
Asm::imm(const std::string &site, RegId dst, Value v)
{
    MicroOp op = make(site, OpClass::IntAlu);
    op.dst = dst;
    regs[dst] = v;
    push(op);
}

void
Asm::add(const std::string &site, RegId dst, RegId a, RegId b)
{
    MicroOp op = make(site, OpClass::IntAlu);
    op.dst = dst;
    op.src = {a, b, invalidReg};
    regs[dst] = regs[a] + regs[b];
    push(op);
}

void
Asm::addi(const std::string &site, RegId dst, RegId a, std::int64_t val)
{
    MicroOp op = make(site, OpClass::IntAlu);
    op.dst = dst;
    op.src = {a, invalidReg, invalidReg};
    regs[dst] = regs[a] + static_cast<Value>(val);
    push(op);
}

void
Asm::sub(const std::string &site, RegId dst, RegId a, RegId b)
{
    MicroOp op = make(site, OpClass::IntAlu);
    op.dst = dst;
    op.src = {a, b, invalidReg};
    regs[dst] = regs[a] - regs[b];
    push(op);
}

void
Asm::mul(const std::string &site, RegId dst, RegId a, RegId b)
{
    MicroOp op = make(site, OpClass::IntMul);
    op.dst = dst;
    op.src = {a, b, invalidReg};
    regs[dst] = regs[a] * regs[b];
    push(op);
}

void
Asm::div(const std::string &site, RegId dst, RegId a, RegId b)
{
    MicroOp op = make(site, OpClass::IntDiv);
    op.dst = dst;
    op.src = {a, b, invalidReg};
    regs[dst] = regs[b] ? regs[a] / regs[b] : 0;
    push(op);
}

void
Asm::andOp(const std::string &site, RegId dst, RegId a, RegId b)
{
    MicroOp op = make(site, OpClass::IntAlu);
    op.dst = dst;
    op.src = {a, b, invalidReg};
    regs[dst] = regs[a] & regs[b];
    push(op);
}

void
Asm::xorOp(const std::string &site, RegId dst, RegId a, RegId b)
{
    MicroOp op = make(site, OpClass::IntAlu);
    op.dst = dst;
    op.src = {a, b, invalidReg};
    regs[dst] = regs[a] ^ regs[b];
    push(op);
}

void
Asm::shl(const std::string &site, RegId dst, RegId a, unsigned sh)
{
    MicroOp op = make(site, OpClass::IntAlu);
    op.dst = dst;
    op.src = {a, invalidReg, invalidReg};
    regs[dst] = sh >= 64 ? 0 : (regs[a] << sh);
    push(op);
}

void
Asm::shr(const std::string &site, RegId dst, RegId a, unsigned sh)
{
    MicroOp op = make(site, OpClass::IntAlu);
    op.dst = dst;
    op.src = {a, invalidReg, invalidReg};
    regs[dst] = sh >= 64 ? 0 : (regs[a] >> sh);
    push(op);
}

void
Asm::fadd(const std::string &site, RegId dst, RegId a, RegId b)
{
    MicroOp op = make(site, OpClass::FpAlu);
    op.dst = dst;
    op.src = {a, b, invalidReg};
    regs[dst] = regs[a] + regs[b];
    push(op);
}

void
Asm::fmul(const std::string &site, RegId dst, RegId a, RegId b)
{
    MicroOp op = make(site, OpClass::FpAlu);
    op.dst = dst;
    op.src = {a, b, invalidReg};
    regs[dst] = regs[a] * regs[b];
    push(op);
}

void
Asm::nop(const std::string &site)
{
    push(make(site, OpClass::Nop));
}

Value
Asm::load(const std::string &site, RegId dst, RegId addr_reg,
          std::int64_t offset, unsigned size, RegId index_reg)
{
    MicroOp op = make(site, OpClass::Load);
    op.dst = dst;
    op.src = {addr_reg, index_reg, invalidReg};
    Addr ea = regs[addr_reg] + static_cast<Addr>(offset);
    if (index_reg != invalidReg)
        ea += regs[index_reg];
    op.effAddr = ea;
    op.memSize = static_cast<std::uint8_t>(size);
    op.memValue = image.read(ea, size);
    regs[dst] = op.memValue;
    push(op);
    return op.memValue;
}

void
Asm::store(const std::string &site, RegId data_reg, RegId addr_reg,
           std::int64_t offset, unsigned size, RegId index_reg)
{
    MicroOp op = make(site, OpClass::Store);
    op.src = {addr_reg, data_reg, index_reg};
    Addr ea = regs[addr_reg] + static_cast<Addr>(offset);
    if (index_reg != invalidReg)
        ea += regs[index_reg];
    op.effAddr = ea;
    op.memSize = static_cast<std::uint8_t>(size);
    op.memValue = regs[data_reg];
    image.write(ea, op.memValue, size);
    push(op);
}

Value
Asm::loadExclusive(const std::string &site, RegId dst, RegId addr_reg,
                   std::int64_t offset, unsigned size)
{
    MicroOp op = make(site, OpClass::Load);
    op.dst = dst;
    op.src = {addr_reg, invalidReg, invalidReg};
    op.exclusiveMem = true;
    Addr ea = regs[addr_reg] + static_cast<Addr>(offset);
    op.effAddr = ea;
    op.memSize = static_cast<std::uint8_t>(size);
    op.memValue = image.read(ea, size);
    regs[dst] = op.memValue;
    push(op);
    return op.memValue;
}

void
Asm::storeExclusive(const std::string &site, RegId data_reg,
                    RegId addr_reg, std::int64_t offset, unsigned size)
{
    MicroOp op = make(site, OpClass::Store);
    op.src = {addr_reg, data_reg, invalidReg};
    op.exclusiveMem = true;
    Addr ea = regs[addr_reg] + static_cast<Addr>(offset);
    op.effAddr = ea;
    op.memSize = static_cast<std::uint8_t>(size);
    op.memValue = regs[data_reg];
    image.write(ea, op.memValue, size);
    push(op);
}

void
Asm::barrier(const std::string &site)
{
    push(make(site, OpClass::Barrier));
}

void
Asm::branch(const std::string &site, bool taken,
            const std::string &target_site, RegId cond_reg)
{
    MicroOp op = make(site, OpClass::Branch);
    op.src = {cond_reg, invalidReg, invalidReg};
    op.taken = taken;
    op.target = taken ? pcOf(target_site) : op.pc + 4;
    push(op);
}

void
Asm::call(const std::string &site, const std::string &target_site)
{
    MicroOp op = make(site, OpClass::Call);
    op.taken = true;
    op.target = pcOf(target_site);
    callStack.push_back(op.pc + 4);
    push(op);
}

void
Asm::ret(const std::string &site)
{
    MicroOp op = make(site, OpClass::Ret);
    op.taken = true;
    if (!callStack.empty()) {
        op.target = callStack.back();
        callStack.pop_back();
    } else {
        op.target = codeBase;
    }
    push(op);
}

void
Asm::indirect(const std::string &site, Addr target, RegId target_reg)
{
    MicroOp op = make(site, OpClass::IndirBr);
    op.src = {target_reg, invalidReg, invalidReg};
    op.taken = true;
    op.target = target;
    push(op);
}

} // namespace trace
} // namespace lvpsim
