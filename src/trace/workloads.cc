#include "trace/workloads.hh"

#include "common/logging.hh"
#include "trace/kernel_spec.hh"
#include "trace/kernels/register.hh"

namespace lvpsim
{
namespace trace
{

const WorkloadRegistry &
WorkloadRegistry::instance()
{
    static WorkloadRegistry reg = [] {
        WorkloadRegistry r;
        registerListing1Kernels(r);
        registerRegularKernels(r);
        registerValueKernels(r);
        registerIrregularKernels(r);
        registerContextKernels(r);
        registerBigCodeKernels(r);
        registerStreamKernels(r);
        return r;
    }();
    return reg;
}

const WorkloadInfo &
WorkloadRegistry::find(const std::string &name) const
{
    for (const auto &e : entries)
        if (e.name == name)
            return e;
    lvp_fatal("unknown workload '%s'", name.c_str());
}

bool
WorkloadRegistry::contains(const std::string &name) const
{
    for (const auto &e : entries)
        if (e.name == name)
            return true;
    return false;
}

std::vector<std::string>
allWorkloadNames()
{
    std::vector<std::string> names;
    for (const auto &e : WorkloadRegistry::instance().all())
        names.push_back(e.name);
    return names;
}

std::vector<std::string>
smokeWorkloadNames()
{
    return {
        "memset_loop", "stream_sum", "const_table", "pointer_chase",
        "interp_dispatch", "hash_probe", "matrix_tile", "big_code",
    };
}

std::vector<MicroOp>
generateWorkload(const std::string &name, std::size_t max_ops,
                 std::uint64_t seed)
{
    const auto &reg = WorkloadRegistry::instance();
    if (!reg.contains(name)) {
        // Not a registered kernel: try the `synth:` spec grammar
        // (docs/kernel_dsl.md), so parameterized kernel specs work
        // everywhere a workload name does.
        std::string err;
        KernelSpec spec = parseKernelSpec(name, &err);
        if (err.empty())
            return SpecKernel(std::move(spec)).generate(max_ops,
                                                        seed);
        if (looksLikeKernelSpec(name))
            lvp_fatal("bad kernel spec '%s': %s", name.c_str(),
                      err.c_str());
        // Plain unknown names keep the historical fatal below.
    }
    const auto &info = reg.find(name);
    return info.make()->generate(max_ops, seed);
}

} // namespace trace
} // namespace lvpsim
