/**
 * @file
 * Analytic ground-truth computation for kernel specs.
 *
 * Mirrors SpecKernel's emission contract (see spec_kernel.cc) without
 * generating a trace:
 *
 *  1. replicate the init-time RNG draws in emission order (region
 *     fills in phase/stream order, Fisher-Yates per shuffled chase)
 *     to recover the exact per-slot values / chase cycle;
 *  2. walk the phase schedule op-by-op, counting the complete
 *     iterations of every phase entry that fit in the op budget
 *     (chase phases walk per iteration because the hot-path branch
 *     makes their op count flag-dependent);
 *  3. replay ideal per-PC predictor models (last-value, address
 *     stride, order-1 value context, order-1 address context) over
 *     each deterministic site's analytic (address, value) sequence —
 *     model state persists across phase re-entries, exactly like a
 *     real predictor's table would;
 *  4. Pick sites draw uniform random slots, so their families get
 *     closed-form expectations and a binomial tolerance instead.
 *
 * SAP hits use address equality: spec memory is static after init, so
 * a correctly predicted address always yields the correct value.
 */

#include "trace/spec_truth.hh"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_map>

#include "common/random.hh"

namespace lvpsim
{
namespace trace
{

namespace
{

/** Same permutation as SpecKernel's ctx/zigzag-chase ordering. */
unsigned
zigzag(unsigned i, unsigned period)
{
    return (i % 2 == 0) ? i / 2 : period - 1 - i / 2;
}

Value
sizeMask(unsigned esz)
{
    return esz == 8 ? ~Value(0) : (Value(1) << (8 * esz)) - 1;
}

/** Per-slot fill values and chase cycle of one stream, with the
 *  init-time RNG draws replicated. */
struct StreamData
{
    Addr start = 0;
    std::vector<Value> fill;       ///< stride/ctx/pick slot values
    std::vector<std::size_t> succ; ///< chase: node -> next node
};

/** The four ideal per-PC predictor models replayed over one site. */
struct SiteModels
{
    bool haveLast = false;
    Value lastVal = 0;
    unsigned addrCount = 0;
    Addr a1 = 0, a0 = 0; ///< most recent / previous address

    // lvplint: allow(determinism) -- probed by key, never iterated
    std::unordered_map<Value, Value> ctxMap;
    // lvplint: allow(determinism) -- probed by key, never iterated
    std::unordered_map<Addr, Addr> capMap;

    std::uint64_t n = 0;
    std::uint64_t lvp = 0, sap = 0, ctx = 0, cap = 0;

    void
    step(Addr addr, Value val)
    {
        if (haveLast && val == lastVal)
            ++lvp;
        if (addrCount >= 2 && addr == 2 * a1 - a0)
            ++sap;
        if (haveLast) {
            auto it = ctxMap.find(lastVal);
            if (it != ctxMap.end() && it->second == val)
                ++ctx;
            ctxMap[lastVal] = val;
        }
        if (addrCount >= 1) {
            auto it = capMap.find(a1);
            if (it != capMap.end() && it->second == addr)
                ++cap;
            capMap[a1] = addr;
        }
        lastVal = val;
        haveLast = true;
        a0 = a1;
        a1 = addr;
        if (addrCount < 2)
            ++addrCount;
        ++n;
    }

    void
    addTo(PhaseTruth &pt) const
    {
        pt.loads += n;
        pt.lvp.hits += double(lvp);
        pt.sap.hits += double(sap);
        pt.ctx.hits += double(ctx);
        pt.cap.hits += double(cap);
    }
};

std::uint64_t
blockOps(const StreamSpec &s)
{
    const std::uint64_t g = s.glue != GlueOp::None ? 1 : 0;
    switch (s.kind) {
      case PatternKind::Stride:
        return 2 + g;
      case PatternKind::Chase:
        return 4 + g; // 3 loads + flag branch; hot path added per-iter
      default:
        return 1 + g;
    }
}

std::uint64_t
blockLoads(const StreamSpec &s)
{
    return s.kind == PatternKind::Chase ? 3 : 1;
}

double
binomTol(std::uint64_t n, double expected)
{
    if (n == 0)
        return 10.0;
    double p = expected / double(n);
    p = std::min(1.0, std::max(0.0, p));
    return 6.0 * std::sqrt(double(n) * p * (1.0 - p)) + 10.0;
}

} // anonymous namespace

TruthProfile
computeTruthProfile(const KernelSpec &spec, std::size_t max_ops,
                    std::uint64_t seed)
{
    TruthProfile out;
    out.phases.resize(spec.phases.size());

    // ---- 1. Replicate init: layout, fills, chase cycles. ------------
    Xoshiro256 rng(seed);
    std::vector<std::vector<StreamData>> data(spec.phases.size());
    for (std::size_t pi = 0; pi < spec.phases.size(); ++pi) {
        const PhaseSpec &ph = spec.phases[pi];
        data[pi].resize(ph.streams.size());
        Addr cursor = phaseBaseAddr(ph, pi);
        for (std::size_t si = 0; si < ph.streams.size(); ++si) {
            const StreamSpec &s = ph.streams[si];
            StreamData &d = data[pi][si];
            d.start = cursor;
            cursor += streamFootprint(s);
            switch (s.kind) {
              case PatternKind::Const:
                break;
              case PatternKind::Stride:
              case PatternKind::Ctx:
              case PatternKind::Pick: {
                const std::uint64_t slots =
                    s.kind == PatternKind::Stride ? s.wset
                    : s.kind == PatternKind::Ctx  ? s.period
                                                  : s.entries;
                d.fill.resize(slots);
                for (std::uint64_t j = 0; j < slots; ++j)
                    d.fill[j] = (s.fill == FillKind::Seq
                                     ? s.fillBase + j * s.fillStep
                                     : rng.next()) &
                                sizeMask(s.esz);
                break;
              }
              case PatternKind::Chase: {
                const std::size_t w = s.wset;
                std::vector<std::size_t> order(w);
                std::iota(order.begin(), order.end(), 0);
                if (s.order == ChaseOrder::Shuffle) {
                    for (std::size_t i = w - 1; i > 0; --i)
                        std::swap(order[i], order[rng.below(i + 1)]);
                } else {
                    for (std::size_t i = 0; i < w; ++i)
                        order[i] = zigzag(unsigned(i), unsigned(w));
                }
                d.succ.resize(w);
                for (std::size_t i = 0; i < w; ++i)
                    d.succ[order[i]] = order[(i + 1) % w];
                break;
              }
            }
        }
    }

    // ---- 2. Schedule walk: complete iterations per phase entry. -----
    // lens[pi] = iteration counts of every entry of phase pi (sites of
    // a phase share the schedule, so one list per phase suffices).
    std::vector<std::vector<std::uint64_t>> lens(spec.phases.size());
    std::uint64_t budget = max_ops;
    std::size_t pi = 0;
    bool exhausted = false;
    while (!exhausted) {
        const PhaseSpec &ph = spec.phases[pi];

        std::uint64_t prologueOps = 2;
        bool havePointer = false, haveOffset = false;
        unsigned ptrStreams = 0;
        for (const StreamSpec &s : ph.streams) {
            if (s.kind == PatternKind::Stride ||
                s.kind == PatternKind::Chase) {
                havePointer = true;
                ++ptrStreams;
            } else {
                haveOffset = true;
            }
        }
        if (havePointer && haveOffset)
            ++prologueOps; // dedicated base register imm
        if (ptrStreams > 1)
            prologueOps += ptrStreams - 1; // extra pointer imms
        if (budget < prologueOps)
            break; // partial prologue: no further complete loads
        budget -= prologueOps;

        std::uint64_t fixedIterOps = 1; // loop branch
        for (const StreamSpec &s : ph.streams)
            fixedIterOps += blockOps(s) * s.weight;

        std::vector<std::size_t> chaseIdx;
        for (std::size_t si = 0; si < ph.streams.size(); ++si)
            if (ph.streams[si].kind == PatternKind::Chase)
                chaseIdx.push_back(si);

        std::uint64_t done = 0;
        if (chaseIdx.empty()) {
            const std::uint64_t full = budget / fixedIterOps;
            done = ph.iters == 0 ? full
                                 : std::min<std::uint64_t>(full,
                                                           ph.iters);
            budget -= done * fixedIterOps;
            if (ph.iters == 0 || done < ph.iters)
                exhausted = true;
        } else {
            // Hot-path ops depend on the flag of the *next* node, so
            // walk iteration by iteration (>= 5 ops each: cheap).
            std::vector<std::size_t> cur(chaseIdx.size(), 0);
            for (;;) {
                if (ph.iters != 0 && done == ph.iters)
                    break;
                std::uint64_t ops = fixedIterOps;
                for (std::size_t c = 0; c < chaseIdx.size(); ++c) {
                    const std::size_t nxt =
                        data[pi][chaseIdx[c]].succ[cur[c]];
                    if (nxt % 3 == 0)
                        ops += 2; // nop + addi on the hot path
                }
                if (budget < ops) {
                    exhausted = true;
                    break;
                }
                budget -= ops;
                for (std::size_t c = 0; c < chaseIdx.size(); ++c)
                    cur[c] = data[pi][chaseIdx[c]].succ[cur[c]];
                ++done;
            }
        }
        lens[pi].push_back(done);
        if (!exhausted)
            pi = (pi + 1) % spec.phases.size();
    }
    out.opsModeled = max_ops - budget;

    std::uint64_t slack = 0;
    for (const PhaseSpec &ph : spec.phases) {
        std::uint64_t l = 0;
        for (const StreamSpec &s : ph.streams)
            l += blockLoads(s) * s.weight;
        slack = std::max(slack, l);
    }
    out.loadSlack = slack;

    // ---- 3./4. Per-site model replay / Pick expectations. -----------
    for (std::size_t p = 0; p < spec.phases.size(); ++p) {
        const PhaseSpec &ph = spec.phases[p];
        PhaseTruth &pt = out.phases[p];
        unsigned rngFills = 0;
        for (std::size_t si = 0; si < ph.streams.size(); ++si) {
            const StreamSpec &s = ph.streams[si];
            const StreamData &d = data[p][si];
            if (s.kind != PatternKind::Const &&
                s.kind != PatternKind::Chase &&
                s.fill == FillKind::Rng)
                ++rngFills;
            for (unsigned rep = 0; rep < s.weight; ++rep) {
                switch (s.kind) {
                  case PatternKind::Const: {
                    SiteModels m;
                    const Value v = s.value & sizeMask(s.esz);
                    for (std::uint64_t L : lens[p])
                        for (std::uint64_t t = 0; t < L; ++t)
                            m.step(d.start, v);
                    m.addTo(pt);
                    break;
                  }
                  case PatternKind::Stride: {
                    SiteModels m;
                    for (std::uint64_t L : lens[p])
                        for (std::uint64_t t = 0; t < L; ++t) {
                            const std::uint64_t slot =
                                t * s.weight + rep;
                            m.step(d.start +
                                       slot * std::uint64_t(s.step),
                                   d.fill[slot]);
                        }
                    m.addTo(pt);
                    break;
                  }
                  case PatternKind::Ctx: {
                    SiteModels m;
                    std::uint64_t g = 0; // cursor persists, like emission
                    for (std::uint64_t L : lens[p])
                        for (std::uint64_t t = 0; t < L; ++t) {
                            const unsigned slot = zigzag(
                                unsigned(g % s.period), s.period);
                            m.step(d.start +
                                       std::uint64_t(slot) * s.esz,
                                   d.fill[slot]);
                            ++g;
                        }
                    m.addTo(pt);
                    break;
                  }
                  case PatternKind::Chase: {
                    SiteModels ld, pay, flag;
                    const auto addrOf = [&](std::size_t node) {
                        return d.start +
                               node * std::uint64_t(s.step);
                    };
                    for (std::uint64_t L : lens[p]) {
                        std::size_t node = 0; // pointer reset per entry
                        for (std::uint64_t t = 0; t < L; ++t) {
                            const std::size_t nxt = d.succ[node];
                            ld.step(addrOf(node), addrOf(nxt));
                            pay.step(addrOf(nxt) + 8,
                                     0x900d + nxt * 13);
                            flag.step(addrOf(nxt) + 16,
                                      nxt % 3 == 0 ? 1 : 0);
                            node = nxt;
                        }
                    }
                    ld.addTo(pt);
                    pay.addTo(pt);
                    flag.addTo(pt);
                    break;
                  }
                  case PatternKind::Pick: {
                    std::uint64_t n = 0;
                    for (std::uint64_t L : lens[p])
                        n += L;
                    const double k = double(s.entries);
                    const double lvpE =
                        n >= 1 ? double(n - 1) / k : 0.0;
                    // P(2*s1 - s0 in range) over uniform slot pairs.
                    double qIn = 0;
                    for (std::uint64_t j = 0; j < s.entries; ++j) {
                        const std::int64_t lo = std::max<std::int64_t>(
                            0, 2 * std::int64_t(j) -
                                   std::int64_t(s.entries) + 1);
                        const std::int64_t hi = std::min<std::int64_t>(
                            std::int64_t(s.entries) - 1,
                            2 * std::int64_t(j));
                        qIn += double(hi - lo + 1);
                    }
                    qIn /= k * k;
                    const double sapE =
                        n >= 2 ? double(n - 2) * qIn / k : 0.0;
                    // Order-1 context: hit at step t iff the context
                    // slot was seen before (prob 1 - r^(t-1)) and its
                    // recorded successor matches (prob 1/k).
                    const double r = 1.0 - 1.0 / k;
                    double ctxE = 0;
                    if (n >= 2)
                        ctxE = (double(n - 1) -
                                k * (1.0 - std::pow(r, double(n - 1)))) /
                               k;
                    ctxE = std::max(0.0, ctxE);

                    pt.loads += n;
                    pt.lvp.hits += lvpE;
                    pt.lvp.tol += binomTol(n, lvpE);
                    pt.sap.hits += sapE;
                    pt.sap.tol += binomTol(n, sapE);
                    pt.ctx.hits += ctxE;
                    pt.ctx.tol += binomTol(n, ctxE);
                    pt.cap.hits += ctxE; // addr<->slot bijection
                    pt.cap.tol += binomTol(n, ctxE);
                    break;
                  }
                }
            }
        }
        // Deterministic replay is exact; a small absolute buffer
        // absorbs boundary effects at the modeling cutoff.
        const double base = 4.0 + 2.0 * rngFills;
        pt.lvp.tol += base;
        pt.sap.tol += base;
        pt.ctx.tol += base;
        pt.cap.tol += base;
    }

    for (const PhaseTruth &pt : out.phases) {
        out.total.loads += pt.loads;
        out.total.lvp.hits += pt.lvp.hits;
        out.total.lvp.tol += pt.lvp.tol;
        out.total.sap.hits += pt.sap.hits;
        out.total.sap.tol += pt.sap.tol;
        out.total.ctx.hits += pt.ctx.hits;
        out.total.ctx.tol += pt.ctx.tol;
        out.total.cap.hits += pt.cap.hits;
        out.total.cap.tol += pt.cap.tol;
    }
    return out;
}

} // namespace trace
} // namespace lvpsim
