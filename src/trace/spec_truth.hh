/**
 * @file
 * Analytic ground-truth predictability profiles for kernel specs.
 *
 * Every KernelSpec stream is built from a pattern primitive whose
 * per-site (address, value) sequence is known in closed form, so the
 * number of hits an *ideal* last-value / address-stride / order-1
 * context predictor scores on the resulting trace can be computed
 * without ever running a predictor — and for the seeded-random Pick
 * primitive, its expectation and a statistical tolerance. The qa fuzz
 * tier checks measured oracle models against these profiles for
 * generated specs (tests/test_spec_fuzz.cc) and the coverage_frontier
 * tool compares the composite predictor against them; the math is
 * documented in docs/kernel_dsl.md.
 *
 * The computation replicates the spec kernel's init-time RNG draws
 * (region fills, chase shuffles), walks the phase schedule op-by-op
 * to count the complete iterations that fit in the op budget, and
 * replays ideal per-PC models over each static site's analytic
 * sequence. Partial final iterations are not modeled; @ref
 * TruthProfile::loadSlack bounds the resulting uncertainty.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "trace/kernel_spec.hh"

namespace lvpsim
{
namespace trace
{

/** Expected hits for one ideal predictor family over some loads. */
struct FamilyTruth
{
    double hits = 0; ///< expected correct predictions
    double tol = 0;  ///< absolute tolerance on @ref hits
};

/** Ground truth for the loads of one spec phase (all entries). */
struct PhaseTruth
{
    std::uint64_t loads = 0; ///< modeled dynamic loads of the phase
    FamilyTruth lvp; ///< ideal last-value predictor (Pattern-1)
    FamilyTruth sap; ///< ideal address-stride predictor (Pattern-2)
    FamilyTruth ctx; ///< ideal order-1 value-context predictor (P3)
    FamilyTruth cap; ///< ideal order-1 address-context predictor

    /** Largest single-family expectation: a lower bound on what a
     *  perfect predictor choice should capture. */
    double
    bestHits() const
    {
        double b = lvp.hits;
        if (sap.hits > b)
            b = sap.hits;
        if (ctx.hits > b)
            b = ctx.hits;
        if (cap.hits > b)
            b = cap.hits;
        return b;
    }
};

/** The full analytic profile of (spec, max_ops, seed). */
struct TruthProfile
{
    std::vector<PhaseTruth> phases; ///< per spec phase, entry-summed
    PhaseTruth total;               ///< sum over phases
    /** Ops covered by complete modeled iterations (<= max_ops). */
    std::uint64_t opsModeled = 0;
    /** Loads of one iteration of the phase running when the budget
     *  ran out: the trace may contain up to this many loads beyond
     *  @ref total loads (truncated final iteration). */
    std::uint64_t loadSlack = 0;
};

/** Hits as a fraction of loads (0 when @p loads is 0). */
inline double
truthFrac(double hits, std::uint64_t loads)
{
    return loads == 0 ? 0.0 : hits / double(loads);
}

/**
 * Compute the analytic profile of @p spec generated with @p max_ops
 * and @p seed — the ground truth for
 * SpecKernel(spec).generate(max_ops, seed).
 */
TruthProfile computeTruthProfile(const KernelSpec &spec,
                                 std::size_t max_ops,
                                 std::uint64_t seed);

} // namespace trace
} // namespace lvpsim
