/**
 * @file
 * One-pass interval profiling for sampled simulation
 * (docs/sampling.md).
 *
 * The profiler streams a dynamic instruction trace once and cuts it
 * into fixed-length intervals; for each interval it emits a compact
 * integer signature vector:
 *
 *  - a BBV-style code signature: every instruction hashes its
 *    64-byte PC block (FNV-1a) into one of `pcDims` buckets, so the
 *    bucket histogram fingerprints *where* the interval executes
 *    (the classic SimPoint basic-block-vector idea, without needing
 *    static basic-block discovery on a trace);
 *  - load-locality features: the log2-magnitude of successive
 *    predictable-load address deltas, bucketed into `strideDims`
 *    bins, so intervals with the same code but different memory
 *    behavior (streaming vs pointer-chasing phases) separate.
 *
 * Signatures are normalized group-wise to a fixed-point sum of
 * 1 << 16, all in integer arithmetic, so the downstream k-means
 * (sim/sample_plan.hh) is bit-stable across platforms and the
 * partial tail interval is directly comparable to full ones.
 */

#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "trace/instruction.hh"
#include "trace/trace_source.hh"

namespace lvpsim
{
namespace trace
{

/** One interval's normalized signature plus its raw size. */
struct IntervalSignature
{
    static constexpr std::size_t pcDims = 64;
    static constexpr std::size_t strideDims = 16;
    static constexpr std::size_t dims = pcDims + strideDims;
    /** Fixed-point scale each feature group is normalized to. */
    static constexpr std::uint32_t fixedOne = 1u << 16;

    std::array<std::uint32_t, dims> v{};
    std::uint64_t instructions = 0; ///< raw interval length
    std::uint64_t loads = 0;        ///< predictable loads observed
};

/** The whole trace, cut into intervals (last one may be partial). */
struct IntervalProfile
{
    std::uint64_t intervalLen = 0;
    std::uint64_t totalInstructions = 0;
    std::vector<IntervalSignature> intervals;
};

/**
 * Streaming interval profiler: feed every instruction in program
 * order via observe(), then finish() to flush the partial tail and
 * take the profile. The in-flight state is checkpointable
 * (saveState/restoreState) so a profiling pass can be suspended and
 * resumed bit-identically, e.g. alongside the functional-warmup
 * checkpoint builder.
 */
class IntervalProfiler
{
  public:
    explicit IntervalProfiler(std::uint64_t interval_len);

    /** Account one instruction to the current interval. */
    void observe(const MicroOp &op);

    /** Flush the partial tail interval and take the profile; the
     *  profiler is empty (but reusable) afterwards. */
    IntervalProfile finish();

    /** Instructions observed since construction / the last finish(). */
    std::uint64_t observed() const { return profile.totalInstructions; }

    /** The complete in-flight profiling state. */
    struct Snapshot
    {
        std::array<std::uint64_t, IntervalSignature::pcDims> pcCounts{};
        std::array<std::uint64_t, IntervalSignature::strideDims>
            strideCounts{};
        std::uint64_t instrsInInterval = 0;
        std::uint64_t loadsInInterval = 0;
        Addr lastLoadAddr = 0;
        bool haveLastLoad = false;
        IntervalProfile profile;
    };

    void saveState(Snapshot &s) const;
    void restoreState(const Snapshot &s);

  private:
    void closeInterval();

    // lvplint: allow(state-snapshot) -- construction-time config,
    // immutable (mirrored by IntervalProfile::intervalLen)
    std::uint64_t intervalLen;

    std::array<std::uint64_t, IntervalSignature::pcDims> pcCounts{};
    std::array<std::uint64_t, IntervalSignature::strideDims>
        strideCounts{};
    std::uint64_t instrsInInterval = 0;
    std::uint64_t loadsInInterval = 0;
    Addr lastLoadAddr = 0;
    bool haveLastLoad = false;
    IntervalProfile profile;
};

/** Profile an already-materialized trace in one pass. */
IntervalProfile profileTrace(const std::vector<MicroOp> &ops,
                             std::uint64_t interval_len);

/** Profile any TraceSource in one streaming pass (resets it first). */
IntervalProfile profileTrace(TraceSource &src,
                             std::uint64_t interval_len);

} // namespace trace
} // namespace lvpsim
