/**
 * @file
 * Base class for synthetic workload kernels.
 *
 * A kernel's body() runs the emulated program against an Asm emitter;
 * generate() keeps re-entering body() until the requested number of
 * dynamic instructions has been produced, so kernels with a finite
 * natural length simply run again over the same (warm) memory image.
 */

#pragma once

#include <string>
#include <vector>

#include "trace/asm_emitter.hh"
#include "trace/instruction.hh"

namespace lvpsim
{
namespace trace
{

class SynthKernel
{
  public:
    explicit SynthKernel(std::string kernel_name)
        : kernelName(std::move(kernel_name))
    {}

    virtual ~SynthKernel() = default;

    const std::string &name() const { return kernelName; }

    /**
     * Produce a deterministic dynamic trace of (up to) @p max_ops
     * micro-ops. The same (kernel, max_ops, seed) triple always yields
     * the identical trace.
     */
    std::vector<MicroOp>
    generate(std::size_t max_ops, std::uint64_t seed = 1) const
    {
        std::vector<MicroOp> out;
        Asm a(out, max_ops, seed);
        init(a);
        while (!a.done()) {
            const std::size_t before = a.emitted();
            body(a);
            if (a.emitted() == before)
                break; // kernel emitted nothing; avoid spinning
        }
        return out;
    }

  protected:
    /**
     * One-time setup before the first body() pass: typically
     * pre-populating the memory image with the program's initial data
     * (silently, without emitting instructions — like data that was
     * already resident when the simulated region begins).
     */
    virtual void init(Asm &a) const { (void)a; }

    /** Emit one full pass of the emulated program (or until a.done()). */
    virtual void body(Asm &a) const = 0;

  private:
    std::string kernelName;
};

} // namespace trace
} // namespace lvpsim

