#include "trace/trace_io.hh"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

namespace lvpsim
{
namespace trace
{

namespace
{

constexpr char magic[4] = {'L', 'V', 'P', 'T'};

/** On-disk record: fixed 40 bytes, little endian. */
struct Record
{
    std::uint64_t pc;
    std::uint64_t effAddr;
    std::uint64_t memValue;
    std::uint64_t target;
    std::uint8_t cls;
    std::uint8_t dst;      // 0xff = none
    std::uint8_t src[3];   // 0xff = none
    std::uint8_t memSize;
    std::uint8_t flags;    // bit0 taken, bit1 exclusive
    std::uint8_t pad;
};

static_assert(sizeof(Record) == 40, "trace record layout changed");

Record
pack(const MicroOp &op)
{
    Record r{};
    r.pc = op.pc;
    r.effAddr = op.effAddr;
    r.memValue = op.memValue;
    r.target = op.target;
    r.cls = std::uint8_t(op.cls);
    r.dst = op.dst == invalidReg ? 0xff : std::uint8_t(op.dst);
    for (int i = 0; i < 3; ++i)
        r.src[i] = op.src[i] == invalidReg ? 0xff
                                           : std::uint8_t(op.src[i]);
    r.memSize = op.memSize;
    r.flags = (op.taken ? 1 : 0) | (op.exclusiveMem ? 2 : 0);
    return r;
}

MicroOp
unpack(const Record &r)
{
    MicroOp op;
    op.pc = r.pc;
    op.effAddr = r.effAddr;
    op.memValue = r.memValue;
    op.target = r.target;
    op.cls = OpClass(r.cls);
    op.dst = r.dst == 0xff ? invalidReg : RegId(r.dst);
    for (int i = 0; i < 3; ++i)
        op.src[i] = r.src[i] == 0xff ? invalidReg : RegId(r.src[i]);
    op.memSize = r.memSize;
    op.taken = (r.flags & 1) != 0;
    op.exclusiveMem = (r.flags & 2) != 0;
    return op;
}

} // anonymous namespace

bool
writeTrace(std::ostream &os, const std::vector<MicroOp> &ops)
{
    os.write(magic, 4);
    const std::uint32_t version = traceFormatVersion;
    const std::uint64_t count = ops.size();
    os.write(reinterpret_cast<const char *>(&version),
             sizeof(version));
    os.write(reinterpret_cast<const char *>(&count), sizeof(count));
    for (const auto &op : ops) {
        const Record r = pack(op);
        os.write(reinterpret_cast<const char *>(&r), sizeof(r));
    }
    return bool(os);
}

bool
readTrace(std::istream &is, std::vector<MicroOp> &ops,
          std::string *error)
{
    auto fail = [&](const char *why) {
        if (error)
            *error = why;
        return false;
    };
    char m[4];
    is.read(m, 4);
    if (!is || std::memcmp(m, magic, 4) != 0)
        return fail("bad magic (not an LVPT trace)");
    std::uint32_t version = 0;
    std::uint64_t count = 0;
    is.read(reinterpret_cast<char *>(&version), sizeof(version));
    is.read(reinterpret_cast<char *>(&count), sizeof(count));
    if (!is)
        return fail("truncated header");
    if (version != traceFormatVersion)
        return fail("unsupported trace version");
    ops.clear();
    ops.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        Record r;
        is.read(reinterpret_cast<char *>(&r), sizeof(r));
        if (!is)
            return fail("truncated record stream");
        if (r.cls > std::uint8_t(OpClass::Nop))
            return fail("corrupt record (bad op class)");
        ops.push_back(unpack(r));
    }
    return true;
}

bool
saveTraceFile(const std::string &path,
              const std::vector<MicroOp> &ops)
{
    std::ofstream os(path, std::ios::binary);
    return os && writeTrace(os, ops);
}

bool
loadTraceFile(const std::string &path, std::vector<MicroOp> &ops,
              std::string *error)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        if (error)
            *error = "cannot open file";
        return false;
    }
    return readTrace(is, ops, error);
}

} // namespace trace
} // namespace lvpsim
