#include "trace/trace_spec.hh"

#include "trace/cvp_trace.hh"

namespace lvpsim
{
namespace trace
{

namespace
{

bool
hasPrefix(const std::string &s, const char *prefix)
{
    return s.rfind(prefix, 0) == 0;
}

} // anonymous namespace

TraceSpec
parseTraceSpec(const std::string &spec)
{
    if (hasPrefix(spec, "synth:"))
        return {TraceKind::Synthetic, spec.substr(6)};
    if (hasPrefix(spec, "lvpt:"))
        return {TraceKind::Lvpt, spec.substr(5)};
    if (hasPrefix(spec, "cvp:"))
        return {TraceKind::Cvp, spec.substr(4)};
    return {TraceKind::Synthetic, spec};
}

std::string
traceSpecString(const TraceSpec &spec)
{
    switch (spec.kind) {
      case TraceKind::Synthetic: return spec.name;
      case TraceKind::Lvpt: return "lvpt:" + spec.name;
      case TraceKind::Cvp: return "cvp:" + spec.name;
    }
    return spec.name;
}

std::unique_ptr<TraceSource>
openTraceSource(const TraceSpec &spec, std::size_t max_ops,
                std::uint64_t seed, std::string *error)
{
    switch (spec.kind) {
      case TraceKind::Synthetic:
        return std::make_unique<SyntheticSource>(spec.name, max_ops,
                                                 seed);
      case TraceKind::Lvpt:
        return RecordedSource::open(spec.name, error);
      case TraceKind::Cvp:
        return CvpTraceSource::open(spec.name, error, max_ops);
    }
    if (error)
        *error = "unknown trace kind";
    return nullptr;
}

} // namespace trace
} // namespace lvpsim
