/**
 * @file
 * Workload specs: the one-string naming scheme that selects a
 * TraceSource backend.
 *
 * Everywhere lvpsim used to take a synthetic kernel name (CLI
 * `--workloads`, SuiteRunner rows, cache keys) it now takes a *spec*:
 *
 *  - `NAME` or `synth:NAME`  — the registered synthetic kernel NAME;
 *  - `lvpt:PATH`             — a recorded `.lvpt` binary trace;
 *  - `cvp:PATH`              — a CVP-1 championship trace
 *                              (optionally gzip-compressed).
 *
 * Bare names stay synthetic, so every historical workload string is
 * still a valid spec with unchanged meaning. See docs/traces.md.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "trace/trace_source.hh"

namespace lvpsim
{
namespace trace
{

/** Which TraceSource backend a spec selects. */
enum class TraceKind
{
    Synthetic, ///< generated kernel (SyntheticSource)
    Lvpt,      ///< recorded `.lvpt` binary (RecordedSource)
    Cvp,       ///< CVP-1 championship trace (CvpTraceSource)
};

/** A parsed workload spec: backend + kernel name or file path. */
struct TraceSpec
{
    TraceKind kind = TraceKind::Synthetic;
    std::string name; ///< kernel name (Synthetic) or file path
};

/**
 * Parse a spec string (see the file comment for the grammar). Never
 * fails: an unknown prefix is simply part of a synthetic kernel name
 * (kernel names contain no ':', so the prefixes cannot collide).
 */
TraceSpec parseTraceSpec(const std::string &spec);

/** Canonical spec string (bare name for synthetic kernels). */
std::string traceSpecString(const TraceSpec &spec);

/**
 * Instantiate the backend a spec selects.
 *
 * @param spec parsed workload spec
 * @param max_ops instruction budget: generation length for synthetic
 *        kernels, parse bound for CVP files (0 = unbounded); `.lvpt`
 *        replay is bounded downstream by `materialize`
 * @param seed synthetic generation seed (ignored for file backends)
 * @param[out] error reason on failure (file backends only; unknown
 *             synthetic kernels abort, matching `generateWorkload`)
 * @return the source, or nullptr with @p error set
 */
std::unique_ptr<TraceSource>
openTraceSource(const TraceSpec &spec, std::size_t max_ops,
                std::uint64_t seed, std::string *error = nullptr);

} // namespace trace
} // namespace lvpsim
