/**
 * @file
 * The dynamic instruction record exchanged between the trace layer and
 * the pipeline model.
 *
 * lvpsim is trace driven: synthetic kernels execute functionally inside
 * the trace layer (over a real memory image) and emit one MicroOp per
 * dynamic instruction. The pipeline then models timing only, so a value
 * misprediction can never corrupt architectural state — it costs a
 * flush, which is exactly the recovery model the paper assumes.
 */

#pragma once

#include <array>
#include <cstdint>

#include "common/types.hh"

namespace lvpsim
{
namespace trace
{

/** Coarse operation classes; the pipeline maps these to lane/latency. */
enum class OpClass : std::uint8_t
{
    IntAlu,   ///< 1-cycle integer op
    IntMul,   ///< 3-cycle multiply
    IntDiv,   ///< 12-cycle divide (unpipelined)
    FpAlu,    ///< 4-cycle floating point
    Load,     ///< memory read (LS lane)
    Store,    ///< memory write (LS lane)
    Branch,   ///< conditional direct branch
    Call,     ///< direct call (pushes RAS)
    Ret,      ///< return (pops RAS, indirect)
    IndirBr,  ///< other indirect branch (ITTAGE)
    Barrier,  ///< memory ordering instruction
    Nop
};

constexpr bool
isMemRef(OpClass c)
{
    return c == OpClass::Load || c == OpClass::Store;
}

constexpr bool
isControl(OpClass c)
{
    return c == OpClass::Branch || c == OpClass::Call ||
           c == OpClass::Ret || c == OpClass::IndirBr;
}

/** One dynamic instruction. */
struct MicroOp
{
    Addr pc = 0;
    OpClass cls = OpClass::Nop;

    RegId dst = invalidReg;
    std::array<RegId, 3> src{invalidReg, invalidReg, invalidReg};

    /// Memory reference fields (Load/Store only).
    Addr effAddr = 0;
    std::uint8_t memSize = 0;      ///< access width in bytes (1/2/4/8)
    Value memValue = 0;            ///< value loaded or stored
    bool exclusiveMem = false;     ///< atomic/exclusive: never predicted

    /// Control fields (Branch/Call/Ret/IndirBr only).
    bool taken = false;
    Addr target = 0;               ///< next PC actually followed

    bool isLoad() const { return cls == OpClass::Load; }
    bool isStore() const { return cls == OpClass::Store; }
    bool isBranch() const { return isControl(cls); }

    /**
     * Loads eligible for value/address prediction. The paper excludes
     * memory ordering instructions and atomic/exclusive accesses
     * (Section III-A).
     */
    bool
    isPredictableLoad() const
    {
        return isLoad() && !exclusiveMem;
    }

    unsigned
    numSrcs() const
    {
        unsigned n = 0;
        for (RegId r : src)
            n += (r != invalidReg) ? 1 : 0;
        return n;
    }
};

} // namespace trace
} // namespace lvpsim

