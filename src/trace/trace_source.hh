/**
 * @file
 * The TraceSource abstraction: one interface over every way lvpsim
 * can obtain a dynamic instruction stream.
 *
 * Historically the simulator knew exactly one frontend — the 28
 * synthetic kernels behind `generateWorkload()`. TraceSource turns
 * "where instructions come from" into a seam with three backends:
 *
 *  - SyntheticSource   wraps a registered kernel; bit-identical to
 *                      the historical `generateWorkload()` output.
 *  - RecordedSource    replays a `.lvpt` file written by trace_io
 *                      (the compact versioned binary format).
 *  - CvpTraceSource    parses a CVP-1 championship trace
 *                      (`cvp_trace.hh`), optionally gzip-compressed.
 *
 * Downstream consumers (`pipe::Core`, the qa differential harness)
 * take a materialized `std::vector<MicroOp>`; `materialize()` is the
 * bridge. See docs/traces.md for the contract and the on-disk
 * formats.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/instruction.hh"

namespace lvpsim
{
namespace trace
{

/**
 * A deterministic, replayable stream of dynamic instructions.
 *
 * Contract:
 *  - `next()` yields instructions in program order and returns false
 *    at end of stream (the out-parameter is untouched on false);
 *  - `reset()` rewinds to the first instruction; a reset source
 *    replays the exact same stream (bit-identical MicroOps);
 *  - `instructionCount()` is the total stream length, known up front
 *    for every current backend;
 *  - `name()` is the human-facing workload label (kernel name or
 *    file path), `format()` the backend tag ("synthetic", "lvpt",
 *    "cvp"), and `identity()` a string that changes whenever the
 *    stream content could change — the sweep-engine caches key on it
 *    (see `sim::runConfigKey` and docs/traces.md §"Trace identity").
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** Yield the next instruction; false at end of stream. */
    virtual bool next(MicroOp &op) = 0;

    /** Rewind to the beginning; the replayed stream is identical. */
    virtual void reset() = 0;

    /** Total number of instructions in the stream. */
    virtual std::size_t instructionCount() const = 0;

    /** Workload label: kernel name or trace file path. */
    virtual const std::string &name() const = 0;

    /** Backend tag: "synthetic", "lvpt", or "cvp". */
    virtual const char *format() const = 0;

    /**
     * Cache-key component: two sources with equal identity() must
     * yield bit-identical streams. Synthetic sources derive it from
     * (kernel, length, seed); file-backed sources include a content
     * hash so an overwritten file never aliases a stale cache entry.
     */
    virtual std::string identity() const = 0;
};

/**
 * Shared backend base: the whole stream held in memory with a replay
 * cursor. All three current backends materialize eagerly (traces at
 * lvpsim's scale fit comfortably; a future streaming backend only
 * needs to implement the TraceSource interface itself).
 */
class BufferedTraceSource : public TraceSource
{
  public:
    bool
    next(MicroOp &op) override
    {
        if (cursor >= ops.size())
            return false;
        op = ops[cursor++];
        return true;
    }

    void reset() override { cursor = 0; }

    std::size_t instructionCount() const override { return ops.size(); }

    const std::string &name() const override { return label; }

    /** Direct read-only access to the buffered stream (no copy). */
    const std::vector<MicroOp> &instructions() const { return ops; }

  protected:
    /** @param workload_label value returned by name() */
    explicit BufferedTraceSource(std::string workload_label)
        : label(std::move(workload_label))
    {}

    std::vector<MicroOp> ops; ///< the materialized stream
    std::size_t cursor = 0;   ///< replay position

  private:
    std::string label;
};

/**
 * The synthetic-kernel backend: generates a registered workload's
 * trace, bit-identical to `generateWorkload(name, max_ops, seed)`.
 */
class SyntheticSource : public BufferedTraceSource
{
  public:
    /**
     * @param workload registered kernel name (fatal if unknown, like
     *        `generateWorkload`)
     * @param max_ops dynamic instruction budget
     * @param seed trace generation seed
     */
    SyntheticSource(const std::string &workload, std::size_t max_ops,
                    std::uint64_t seed = 1);

    const char *format() const override { return "synthetic"; }

    std::string identity() const override;

  private:
    std::size_t maxOps;
    std::uint64_t seed;
};

/**
 * The recorded-binary backend: replays a `.lvpt` file written by
 * `writeTrace` / `recordTrace` (magic "LVPT", versioned header; see
 * docs/traces.md §"Recorded binary format").
 */
class RecordedSource : public BufferedTraceSource
{
  public:
    /**
     * Open and fully parse @p path.
     * @return the source, or nullptr with @p error set (missing
     *         file, bad magic, version skew, truncation).
     */
    static std::unique_ptr<RecordedSource>
    open(const std::string &path, std::string *error = nullptr);

    const char *format() const override { return "lvpt"; }

    std::string identity() const override;

  private:
    explicit RecordedSource(std::string path)
        : BufferedTraceSource(std::move(path))
    {}

    std::uint64_t contentHash = 0;
};

/**
 * Drain @p src from its current position into a vector, stopping
 * after @p max_ops instructions (0 = unbounded).
 */
std::vector<MicroOp> materialize(TraceSource &src,
                                 std::size_t max_ops = 0);

/**
 * The recorder half of the RecordedSource pair: drain @p src (from
 * its current position) and write the stream as a `.lvpt` file.
 *
 * @param src any TraceSource (synthetic, CVP, or recorded)
 * @param path output file
 * @param max_ops cap on recorded instructions (0 = whole stream)
 * @param error human-readable reason on failure
 * @return number of instructions written, or 0 on failure (an empty
 *         source also records 0 — check @p error to distinguish)
 */
std::size_t recordTrace(TraceSource &src, const std::string &path,
                        std::size_t max_ops = 0,
                        std::string *error = nullptr);

/** FNV-1a content hash over a MicroOp stream (identity() helper). */
std::uint64_t hashTrace(const std::vector<MicroOp> &ops);

/**
 * Stable single-line rendering of one MicroOp, e.g.
 * `pc=0x4000 cls=4 dst=3 src=1,-,- ea=0x10000 sz=8 val=0x2a
 * excl=0 taken=0 tgt=0x0` — the format golden-trace fixtures are
 * diffed in (the `.golden` files under tests/data).
 */
std::string debugString(const MicroOp &op);

} // namespace trace
} // namespace lvpsim
