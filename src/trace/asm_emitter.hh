/**
 * @file
 * The kernel "assembler": a small DSL synthetic kernels use to emit a
 * dynamic MicroOp stream while executing functionally.
 *
 * Each emit call names a static *site* (a stable string); all dynamic
 * instances emitted from the same site share a PC, exactly like dynamic
 * instances of one static instruction. Register values and memory are
 * tracked functionally, so the emitted trace is dataflow- and
 * memory-consistent: every load's memValue is what the program actually
 * stored there.
 */

#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/random.hh"
#include "common/types.hh"
#include "trace/instruction.hh"
#include "trace/memory_image.hh"

namespace lvpsim
{
namespace trace
{

class Asm
{
  public:
    /** Default code base for synthetic kernels. */
    static constexpr Addr codeBase = 0x400000;

    Asm(std::vector<MicroOp> &out, std::size_t max_ops,
        std::uint64_t seed);

    /** True once max_ops have been emitted; kernels poll this in loops. */
    bool done() const { return buf.size() >= maxOps; }
    std::size_t emitted() const { return buf.size(); }

    /** The PC assigned to a static site (stable per unique name). */
    Addr pcOf(const std::string &site);

    // ------------------------------------------------------------------
    // Integer / FP computation. Values are computed from the tracked
    // register file so downstream dataflow is genuine.
    // ------------------------------------------------------------------
    void imm(const std::string &site, RegId dst, Value v);
    void add(const std::string &site, RegId dst, RegId a, RegId b);
    void addi(const std::string &site, RegId dst, RegId a,
              std::int64_t val);
    void sub(const std::string &site, RegId dst, RegId a, RegId b);
    void mul(const std::string &site, RegId dst, RegId a, RegId b);
    void div(const std::string &site, RegId dst, RegId a, RegId b);
    void andOp(const std::string &site, RegId dst, RegId a, RegId b);
    void xorOp(const std::string &site, RegId dst, RegId a, RegId b);
    void shl(const std::string &site, RegId dst, RegId a, unsigned sh);
    void shr(const std::string &site, RegId dst, RegId a, unsigned sh);
    /** FP-latency op; integer add semantics (values are opaque here). */
    void fadd(const std::string &site, RegId dst, RegId a, RegId b);
    void fmul(const std::string &site, RegId dst, RegId a, RegId b);
    void nop(const std::string &site);

    // ------------------------------------------------------------------
    // Memory. effAddr = regs[addr_reg] + offset (+ regs[index_reg]).
    // ------------------------------------------------------------------
    /** Emit a load; returns (and writes to dst) the loaded value. */
    Value load(const std::string &site, RegId dst, RegId addr_reg,
               std::int64_t offset, unsigned size,
               RegId index_reg = invalidReg);
    void store(const std::string &site, RegId data_reg, RegId addr_reg,
               std::int64_t offset, unsigned size,
               RegId index_reg = invalidReg);
    /** Exclusive/atomic load: never value-predicted (Section III-A). */
    Value loadExclusive(const std::string &site, RegId dst,
                        RegId addr_reg, std::int64_t offset,
                        unsigned size);
    void storeExclusive(const std::string &site, RegId data_reg,
                        RegId addr_reg, std::int64_t offset,
                        unsigned size);
    void barrier(const std::string &site);

    // ------------------------------------------------------------------
    // Control flow. Directions/targets are recorded for the branch
    // predictors; the trace follows the actual outcome.
    // ------------------------------------------------------------------
    void branch(const std::string &site, bool taken,
                const std::string &target_site,
                RegId cond_reg = invalidReg);
    void call(const std::string &site, const std::string &target_site);
    void ret(const std::string &site);
    /** Indirect branch whose target varies (drives ITTAGE). */
    void indirect(const std::string &site, Addr target,
                  RegId target_reg = invalidReg);

    // ------------------------------------------------------------------
    // Kernel-side helpers.
    // ------------------------------------------------------------------
    Value reg(RegId r) const { return regs.at(r); }
    MemoryImage &mem() { return image; }
    Xoshiro256 &rng() { return rngState; }

  private:
    void push(MicroOp op);
    MicroOp make(const std::string &site, OpClass cls);

    std::vector<MicroOp> &buf;
    std::size_t maxOps;
    MemoryImage image;
    Xoshiro256 rngState;
    std::array<Value, numArchRegs> regs{};
    // lvplint: allow(determinism) -- label -> site-index intern
    // table, find/insert only; indices are handed out in first-use
    // order, never by iterating the map
    std::unordered_map<std::string, unsigned> sites;
    std::vector<Addr> callStack;
};

} // namespace trace
} // namespace lvpsim

