/**
 * @file
 * KernelSpec: a distribution-driven synthetic-kernel DSL.
 *
 * A spec assembles a kernel from *pattern primitives* (constant /
 * stride / finite-context / random-pick / pointer-chase streams),
 * combined per phase with a pick strategy (sequential, round-robin
 * or seeded-random interleave), pattern-mix ratios (block weights),
 * a phase-change schedule (finite phases cycle; a final infinite
 * phase runs forever) and parameterized working-set sizes. One spec
 * therefore names a whole family of workloads, and — unlike the
 * hand-written kernels — each spec carries an *analytic* ground-truth
 * predictability profile (see trace/spec_truth.hh).
 *
 * Specs have a stable text grammar accepted everywhere a workload
 * name is (see docs/kernel_dsl.md):
 *
 *     synth:[iters=1000,mix=rr]stride(wset=256,step=8),const(v=0x42)*2;
 *           [iters=500]pick(k=8)
 *
 * Emission layers on the existing SynthKernel/Asm machinery, so a
 * spec trace is dataflow- and memory-consistent like any hand-written
 * kernel, and a handful of the legacy kernels are reproducible
 * byte-for-byte as specs (see tests/test_spec_differential.cc).
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "trace/synth_kernel.hh"

namespace lvpsim
{
namespace trace
{

/** The pattern primitive a stream emits (one load block per rep). */
enum class PatternKind
{
    Const,  ///< same address, same value every time (Pattern-1)
    Stride, ///< pointer walks a region in fixed steps (Pattern-2)
    Ctx,    ///< periodic working set in a zigzag order (Pattern-3)
    Pick,   ///< uniform random slot of a small table (low locality)
    Chase,  ///< linked-list traversal with payload + flag loads
};

/** How a block's loaded value feeds the phase accumulator. */
enum class GlueOp
{
    Add,  ///< integer add into the accumulator
    Xor,  ///< xor into the accumulator
    Fadd, ///< FP-latency add into the accumulator
    None, ///< value left unused (no glue op emitted)
};

/** Per-iteration interleaving of a phase's stream blocks. */
enum class MixStrategy
{
    Seq,        ///< blocks in spec order
    RoundRobin, ///< one block per stream in turn until weights drain
    Random,     ///< seeded-random shuffle of the block list
};

/** How a stream's backing region is filled during init. */
enum class FillKind
{
    Seq, ///< slot j holds v0 + j*dv (distinct by construction)
    Rng, ///< slot j holds the next kernel-seeded random word
};

/** Node visiting order of a Chase stream's cycle. */
enum class ChaseOrder
{
    Zigzag,  ///< deterministic 0, W-1, 1, W-2, ... permutation
    Shuffle, ///< seeded Fisher-Yates shuffle (legacy pointer_chase)
};

/** One pattern stream inside a phase. */
struct StreamSpec
{
    PatternKind kind = PatternKind::Const;
    GlueOp glue = GlueOp::Add;
    /** Block repetitions per iteration (pattern-mix ratio). Each rep
     *  is a distinct static load site. */
    unsigned weight = 1;
    /** Const: the loaded value. */
    Value value = 0x1000;
    /** Stride: elements in the region; Chase: nodes in the cycle. */
    std::uint64_t wset = 64;
    /** Stride: byte step per rep; Chase: node size in bytes. */
    std::int64_t step = 8;
    /** Load size in bytes (4 or 8). */
    unsigned esz = 8;
    /** Region fill for Stride/Ctx/Pick. */
    FillKind fill = FillKind::Seq;
    /** FillKind::Seq base value. */
    Value fillBase = 0x1000;
    /** FillKind::Seq per-slot increment (must be nonzero). */
    Value fillStep = 0x29;
    /** Ctx: slots in the periodic working set. */
    unsigned period = 8;
    /** Pick: entries in the randomly indexed table. */
    unsigned entries = 8;
    /** Chase: node visiting order. */
    ChaseOrder order = ChaseOrder::Zigzag;
};

/** One phase of a spec kernel's schedule. */
struct PhaseSpec
{
    /** Iterations before moving on; 0 = run forever (last phase
     *  only). Finite phase lists cycle back to the first phase. */
    std::uint64_t iters = 0;
    MixStrategy mix = MixStrategy::Seq;
    /** Region base address; 0 = auto (0x60000000 + 64 MiB per
     *  phase). Stream regions pack back-to-back from here. */
    Addr base = 0;
    std::vector<StreamSpec> streams;
};

/** A full kernel spec: the phase schedule. */
struct KernelSpec
{
    std::vector<PhaseSpec> phases;
};

/** Stream defaults for a kind (canonical printing elides these). */
StreamSpec defaultStream(PatternKind kind);

/**
 * Parse the `synth:` grammar (without the prefix; see
 * docs/kernel_dsl.md). Returns an empty-phase spec and sets
 * @p error on malformed input or a spec that fails validation.
 */
KernelSpec parseKernelSpec(const std::string &text,
                           std::string *error = nullptr);

/**
 * Canonical text for a spec: fixed parameter order, defaults elided,
 * addresses and values in hex. parse(print(parse(s))) is a fixed
 * point for every valid s.
 */
std::string printKernelSpec(const KernelSpec &spec);

/**
 * Structural validation: phase/stream bounds, region overlap, the
 * per-kind constraints the ground-truth math relies on. Returns ""
 * when valid, else a one-line reason.
 */
std::string validateKernelSpec(const KernelSpec &spec);

/** True when @p name parses as a spec (not a registered kernel). */
bool looksLikeKernelSpec(const std::string &name);

/**
 * The canonical cache-identity name for a synthetic workload string:
 * registered kernel names pass through unchanged; spec strings are
 * canonicalized so equivalent spellings share TraceCache /
 * checkpoint-cache entries. Unparseable non-registered names also
 * pass through (downstream generation reports the error).
 */
std::string canonicalSyntheticName(const std::string &name);

/** The effective region base of phase @p idx (auto bases resolved). */
Addr phaseBaseAddr(const PhaseSpec &phase, std::size_t idx);

/** Byte footprint of one stream's backing region. */
std::uint64_t streamFootprint(const StreamSpec &s);

/**
 * A SynthKernel driven by a KernelSpec. name() is the canonical spec
 * text, so SyntheticSource identities are canonical automatically.
 */
class SpecKernel : public SynthKernel
{
  public:
    explicit SpecKernel(KernelSpec spec);
    ~SpecKernel() override; // out of line: EmitState is incomplete here

    /** The validated spec this kernel emits. */
    const KernelSpec &spec() const { return ks; }

  protected:
    void init(Asm &a) const override;
    void body(Asm &a) const override;

  private:
    struct EmitState;

    void emitPrologue(Asm &a, std::size_t phase) const;
    void emitIteration(Asm &a, std::size_t phase) const;
    void emitBlock(Asm &a, std::size_t phase, std::size_t stream,
                   unsigned rep) const;

    KernelSpec ks;
    // Mutable: generate() is const but emission carries per-phase
    // positions (ctx zigzag cursors, schedule state) across body()
    // re-entries. Reset by init() at the start of every generate().
    mutable std::unique_ptr<EmitState> st;
};

} // namespace trace
} // namespace lvpsim
