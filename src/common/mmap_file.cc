#include "common/mmap_file.hh"

#include <dirent.h>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <ctime>

namespace lvpsim
{

MappedFile
MappedFile::open(const std::string &path)
{
    MappedFile mf;
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0)
        return mf;
    struct stat st;
    if (fstat(fd, &st) != 0 || !S_ISREG(st.st_mode) || st.st_size <= 0) {
        ::close(fd);
        return mf;
    }
    const auto sz = static_cast<std::size_t>(st.st_size);
    void *p = mmap(nullptr, sz, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (p == MAP_FAILED)
        return mf;
    mf.addr = p;
    mf.len = sz;
    return mf;
}

void
MappedFile::reset()
{
    if (addr != nullptr) {
        munmap(addr, len);
        addr = nullptr;
        len = 0;
    }
}

bool
atomicWriteFile(const std::string &path, const void *data, std::size_t n)
{
    // Unique temp name in the target directory so rename(2) stays
    // within one filesystem (and is therefore atomic).
    std::string tmp = path + ".tmp." + std::to_string(::getpid());
    const int fd = ::open(tmp.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0)
        return false;

    const auto *p = static_cast<const unsigned char *>(data);
    std::size_t off = 0;
    bool ok = true;
    while (off < n) {
        const ssize_t w = ::write(fd, p + off, n - off);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            ok = false;
            break;
        }
        off += static_cast<std::size_t>(w);
    }
    if (ok && fsync(fd) != 0)
        ok = false;
    ::close(fd);
    if (ok && std::rename(tmp.c_str(), path.c_str()) != 0)
        ok = false;
    if (!ok)
        ::unlink(tmp.c_str());
    return ok;
}

bool
makeDirs(const std::string &path)
{
    if (path.empty())
        return false;
    std::string cur;
    std::size_t i = 0;
    while (i < path.size()) {
        std::size_t next = path.find('/', i + 1);
        if (next == std::string::npos)
            next = path.size();
        cur = path.substr(0, next);
        if (!cur.empty() && cur != "/" &&
            mkdir(cur.c_str(), 0755) != 0 && errno != EEXIST) {
            return false;
        }
        i = next;
    }
    struct stat st;
    return stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

std::int64_t
fileSize(const std::string &path)
{
    struct stat st;
    if (stat(path.c_str(), &st) != 0 || !S_ISREG(st.st_mode))
        return -1;
    return static_cast<std::int64_t>(st.st_size);
}

std::int64_t
fileMtime(const std::string &path)
{
    struct stat st;
    if (stat(path.c_str(), &st) != 0)
        return -1;
    return static_cast<std::int64_t>(st.st_mtime);
}

void
touchFile(const std::string &path)
{
    // utimensat with UTIME_NOW avoids an explicit wall-clock read.
    const struct timespec times[2] = {{0, UTIME_NOW}, {0, UTIME_NOW}};
    utimensat(AT_FDCWD, path.c_str(), times, 0);
}

bool
removeFile(const std::string &path)
{
    return ::unlink(path.c_str()) == 0;
}

std::vector<DirEntry>
listDir(const std::string &path)
{
    std::vector<DirEntry> out;
    DIR *d = opendir(path.c_str());
    if (d == nullptr)
        return out;
    while (struct dirent *e = readdir(d)) {
        const std::string name = e->d_name;
        if (name == "." || name == "..")
            continue;
        struct stat st;
        const std::string full = path + "/" + name;
        if (stat(full.c_str(), &st) != 0 || !S_ISREG(st.st_mode))
            continue;
        out.push_back({name, static_cast<std::uint64_t>(st.st_size),
                       static_cast<std::int64_t>(st.st_mtime)});
    }
    closedir(d);
    return out;
}

std::int64_t
wallClockSeconds()
{
    // Feeds only claim-file staleness decisions (never simulation
    // results), so the wall-clock read is deterministic-output safe.
    // lvplint: allow(determinism) -- claim staleness needs wall time
    return static_cast<std::int64_t>(time(nullptr));
}

ClaimFile
ClaimFile::tryAcquire(const std::string &claimPath)
{
    ClaimFile cf;
    const int fd = ::open(claimPath.c_str(),
                          O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
    if (fd < 0)
        return cf;
    // Content is advisory (debugging aid); staleness uses mtime.
    const std::string pid = std::to_string(::getpid()) + "\n";
    ssize_t w = ::write(fd, pid.data(), pid.size());
    (void)w;
    ::close(fd);
    cf.path = claimPath;
    return cf;
}

void
ClaimFile::release()
{
    if (!path.empty()) {
        ::unlink(path.c_str());
        path.clear();
    }
}

} // namespace lvpsim
