/**
 * @file
 * LVPSIM_CHECK: the correctness subsystem's invariant macro.
 *
 * A checked build (`-DLVPSIM_ASSERTIONS=ON`, the default for every
 * build type except Release) compiles LVPSIM_CHECK into an
 * lvp_assert-style fatal check; a Release build compiles it away
 * entirely — the condition is never evaluated, so invariant hooks on
 * hot paths (the core's per-cycle occupancy checks, predictor state
 * bounds) cost nothing in production binaries.
 *
 * The macro lives in src/common (it depends only on logging.hh), so
 * every layer — pipeline, core, the qa harness itself — can state
 * invariants without a dependency on the qa library. Layering is
 * enforced by the lvplint `layering` check against
 * tools/lint/layering.manifest.
 */

#pragma once

#include "common/logging.hh"

#ifdef LVPSIM_ASSERTIONS
#define LVPSIM_CHECKS_ENABLED 1
/** Fatal unless the invariant holds (checked builds only). */
#define LVPSIM_CHECK(cond, ...) lvp_assert(cond, __VA_ARGS__)
#else
#define LVPSIM_CHECKS_ENABLED 0
/* sizeof keeps the condition syntactically valid without evaluating
 * it, so checked-only expressions still parse in Release builds. */
#define LVPSIM_CHECK(cond, ...) ((void)sizeof(!(cond)))
#endif

namespace lvpsim
{

/** True when this binary was built with invariant checks. */
constexpr bool
checksEnabled()
{
    return LVPSIM_CHECKS_ENABLED != 0;
}

} // namespace lvpsim

