/**
 * @file
 * Bit-manipulation helpers used throughout the predictor and cache models.
 */

#pragma once

#include <cstdint>

#include "common/logging.hh"

namespace lvpsim
{

/** True iff @p v is a power of two (0 is not). */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Floor of log base 2; log2i(0) is undefined (returns 0). */
constexpr unsigned
log2i(std::uint64_t v)
{
    unsigned r = 0;
    while (v > 1) {
        v >>= 1;
        ++r;
    }
    return r;
}

/** Ceiling of log base 2. */
constexpr unsigned
ceilLog2(std::uint64_t v)
{
    return isPowerOf2(v) ? log2i(v) : log2i(v) + 1;
}

/** A mask with the low @p nbits bits set. */
constexpr std::uint64_t
mask(unsigned nbits)
{
    return nbits >= 64 ? ~std::uint64_t(0)
                       : ((std::uint64_t(1) << nbits) - 1);
}

/** Extract bits [first, first+nbits) of @p v. */
constexpr std::uint64_t
bits(std::uint64_t v, unsigned first, unsigned nbits)
{
    return (v >> first) & mask(nbits);
}

/**
 * XOR-fold @p v down to @p nbits bits. Used to form partial tags and
 * table indices the way the paper does (e.g. (PC>>2) ^ (PC>>12)).
 */
constexpr std::uint64_t
foldBits(std::uint64_t v, unsigned nbits)
{
    if (nbits == 0)
        return 0;
    std::uint64_t r = 0;
    while (v != 0) {
        r ^= v & mask(nbits);
        v >>= nbits;
    }
    return r;
}

/** Sign-extend the low @p nbits bits of @p v to 64 bits. */
constexpr std::int64_t
signExtend(std::uint64_t v, unsigned nbits)
{
    lvp_assert(nbits >= 1 && nbits <= 64, "bad width %u", nbits);
    if (nbits == 64)
        return static_cast<std::int64_t>(v);
    const std::uint64_t m = std::uint64_t(1) << (nbits - 1);
    v &= mask(nbits);
    return static_cast<std::int64_t>((v ^ m) - m);
}

/** True iff signed value @p v fits in @p nbits bits (two's complement). */
constexpr bool
fitsSigned(std::int64_t v, unsigned nbits)
{
    if (nbits >= 64)
        return true;
    const std::int64_t lo = -(std::int64_t(1) << (nbits - 1));
    const std::int64_t hi = (std::int64_t(1) << (nbits - 1)) - 1;
    return v >= lo && v <= hi;
}

/**
 * Mix a 64-bit value into a well-distributed hash (SplitMix64 finalizer).
 * Used where the paper says "hash of PC and history".
 */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace lvpsim

