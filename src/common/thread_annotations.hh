/**
 * @file
 * Clang thread-safety-analysis annotation macros.
 *
 * Under Clang these expand to the `-Wthread-safety` attributes
 * (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html), turning
 * the repo's locking contracts into compile errors in the
 * `LVPSIM_THREAD_SAFETY` build tree (`-Werror=thread-safety`; see
 * tools/check_thread_safety.sh). Everywhere else — GCC, MSVC — every
 * macro degrades to a no-op, so annotated code builds identically on
 * any toolchain.
 *
 * Raw `std::mutex` members cannot carry these annotations (libstdc++
 * types are not capability-annotated), so shared-state classes use
 * the wrappers in common/sync.hh instead; the lvplint
 * `lock-discipline` check enforces both halves of that contract
 * (docs/static_analysis.md).
 */

#pragma once

#if defined(__clang__)
#define LVPSIM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define LVPSIM_THREAD_ANNOTATION(x)
#endif

/** Marks a type as a lockable capability (e.g. a mutex wrapper). */
#define CAPABILITY(x) LVPSIM_THREAD_ANNOTATION(capability(x))

/** Marks an RAII type that acquires in its ctor, releases in dtor. */
#define SCOPED_CAPABILITY LVPSIM_THREAD_ANNOTATION(scoped_lockable)

/** Data member readable/writable only while holding the capability. */
#define GUARDED_BY(x) LVPSIM_THREAD_ANNOTATION(guarded_by(x))

/** Pointer member whose *pointee* is guarded by the capability. */
#define PT_GUARDED_BY(x) LVPSIM_THREAD_ANNOTATION(pt_guarded_by(x))

/** Function that may only be called while holding the capability. */
#define REQUIRES(...) \
    LVPSIM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Like REQUIRES, but shared (reader) access suffices. */
#define REQUIRES_SHARED(...) \
    LVPSIM_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/** Function that acquires the capability and holds it on return. */
#define ACQUIRE(...) \
    LVPSIM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Shared-mode ACQUIRE. */
#define ACQUIRE_SHARED(...) \
    LVPSIM_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/** Function that releases a held capability. */
#define RELEASE(...) \
    LVPSIM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Shared-mode RELEASE. */
#define RELEASE_SHARED(...) \
    LVPSIM_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/** RELEASE in whichever mode (exclusive or shared) is held — the
 *  right dtor annotation for a scoped lock usable in either mode. */
#define RELEASE_GENERIC(...) \
    LVPSIM_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

/** Function that acquires only on a given return value. */
#define TRY_ACQUIRE(...) \
    LVPSIM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** Shared-mode TRY_ACQUIRE. */
#define TRY_ACQUIRE_SHARED(...) \
    LVPSIM_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

/** Function that must NOT be entered holding the capability
 *  (documents "acquires internally"; catches self-deadlock). */
#define EXCLUDES(...) LVPSIM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Lock-ordering declarations (deadlock prevention). */
#define ACQUIRED_BEFORE(...) \
    LVPSIM_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
    LVPSIM_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/** Function returning a reference to the named capability. */
#define RETURN_CAPABILITY(x) LVPSIM_THREAD_ANNOTATION(lock_returned(x))

/**
 * Escape hatch: the function is excluded from the analysis. Reserved
 * for condition-variable wait predicates, which run with the lock
 * held by the wait contract but inside a lambda the analysis cannot
 * see through. Every use must sit next to a comment saying which
 * lock protects it.
 */
#define NO_THREAD_SAFETY_ANALYSIS \
    LVPSIM_THREAD_ANNOTATION(no_thread_safety_analysis)
