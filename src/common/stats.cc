#include "common/stats.hh"

#include <iomanip>

namespace lvpsim
{
namespace stats
{

StatBase::StatBase(StatGroup &group, std::string name, std::string desc)
    : statName(group.prefix().empty()
                   ? std::move(name)
                   : group.prefix() + "." + std::move(name)),
      statDesc(std::move(desc))
{
    group.registerStat(this);
}

void
Scalar::dump(std::ostream &os) const
{
    os << std::left << std::setw(44) << name()
       << std::right << std::setw(16) << val
       << "  # " << desc() << "\n";
}

std::uint64_t
Histogram::total() const
{
    std::uint64_t t = 0;
    for (auto c : counts)
        t += c;
    return t;
}

void
Histogram::dump(std::ostream &os) const
{
    os << name() << "  # " << desc() << "\n";
    for (std::size_t i = 0; i < counts.size(); ++i) {
        os << "    [" << std::setw(3) << i << "] "
           << std::setw(16) << counts[i] << "\n";
    }
}

void
Histogram::reset()
{
    for (auto &c : counts)
        c = 0;
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const StatBase *s : statList)
        s->dump(os);
}

void
StatGroup::resetAll()
{
    for (StatBase *s : statList)
        s->reset();
}

} // namespace stats
} // namespace lvpsim
