/**
 * @file
 * Saturating counters: the plain kind and the forward probabilistic kind
 * (FPC) of Riley and Zilles [28], which the paper uses for every
 * predictor confidence counter (Section III-B, Table IV).
 */

#pragma once

#include <cstdint>
#include <initializer_list>
#include <vector>

#include "common/logging.hh"
#include "common/random.hh"

namespace lvpsim
{

/** An unsigned saturating counter over [0, maxVal]. */
class SatCounter
{
  public:
    explicit SatCounter(unsigned num_bits = 2, unsigned initial = 0)
        : maxVal((1u << num_bits) - 1), val(initial)
    {
        lvp_assert(num_bits >= 1 && num_bits <= 16,
                   "unreasonable counter width %u", num_bits);
        lvp_assert(initial <= maxVal, "initial %u > max %u",
                   initial, maxVal);
    }

    unsigned value() const { return val; }
    unsigned max() const { return maxVal; }
    bool saturated() const { return val == maxVal; }

    void
    increment()
    {
        if (val < maxVal)
            ++val;
    }

    void
    decrement()
    {
        if (val > 0)
            --val;
    }

    void reset() { val = 0; }
    void set(unsigned v) { lvp_assert(v <= maxVal, "v too big"); val = v; }

  private:
    unsigned maxVal;
    unsigned val;
};

/**
 * Forward Probabilistic Counter.
 *
 * A confidence counter whose increment from level i to level i+1 only
 * happens with probability vec[i]. The expected number of consecutive
 * correct observations required to walk from 0 to level N is
 * sum(1/vec[i]) — the paper's "effective confidence". This lets a 3-bit
 * counter act like a 6-bit one.
 *
 * The FPC vector has one probability per upward transition; its length
 * determines the counter's maximum value.
 */
class FpcVector
{
  public:
    FpcVector(std::initializer_list<double> probs) : vec(probs)
    {
        lvp_assert(!vec.empty(), "empty FPC vector");
        for (double p : vec)
            lvp_assert(p > 0.0 && p <= 1.0, "bad FPC probability %f", p);
    }

    unsigned maxLevel() const { return static_cast<unsigned>(vec.size()); }

    double
    prob(unsigned level) const
    {
        lvp_assert(level < vec.size(), "level %u out of range", level);
        return vec[level];
    }

    /** Expected observations to reach @p level from zero. */
    double
    effectiveConfidence(unsigned level) const
    {
        lvp_assert(level <= vec.size(), "level %u out of range", level);
        double e = 0.0;
        for (unsigned i = 0; i < level; ++i)
            e += 1.0 / vec[i];
        return e;
    }

  private:
    std::vector<double> vec;
};

/**
 * A counter driven by an FpcVector. The vector is shared (one per
 * predictor type); the counter holds only its current level, which is
 * what would exist in hardware.
 */
class FpcCounter
{
  public:
    FpcCounter() : val(0) {}

    unsigned value() const { return val; }

    /** Probabilistically step toward saturation. */
    void
    increment(const FpcVector &vec, Xoshiro256 &rng)
    {
        if (val >= vec.maxLevel())
            return;
        if (rng.bernoulli(vec.prob(val)))
            ++val;
    }

    /** Deterministically step (used by tests and by reset-to-mid states). */
    void
    forceIncrement(const FpcVector &vec)
    {
        if (val < vec.maxLevel())
            ++val;
    }

    void reset() { val = 0; }

    bool
    atLeast(unsigned threshold) const
    {
        return val >= threshold;
    }

  private:
    std::uint8_t val;
};

} // namespace lvpsim

