/**
 * @file
 * Little-endian binary serialization primitives for the checkpoint
 * store (docs/performance.md).
 *
 * BinWriter appends to a growable byte buffer; BinReader walks a
 * read-only span with bounds checking. The reader is *total*: any
 * out-of-range read sets a sticky fail flag and returns zero instead
 * of crashing, so a truncated or corrupted store entry degrades into
 * a cache miss (the caller checks ok() once at the end) rather than
 * undefined behavior. Encoding is explicitly little-endian
 * byte-by-byte, independent of host endianness.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace lvpsim
{

/** FNV-1a 64-bit hash (used for store keys and payload checksums). */
constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

inline std::uint64_t
fnv1a64(const void *data, std::size_t n,
        std::uint64_t h = kFnvOffsetBasis)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
    return h;
}

inline std::uint64_t
fnv1a64(const std::string &s, std::uint64_t h = kFnvOffsetBasis)
{
    return fnv1a64(s.data(), s.size(), h);
}

/** Append-only little-endian encoder. */
class BinWriter
{
  public:
    void
    u8(std::uint8_t v)
    {
        buf.push_back(v);
    }

    void
    u16(std::uint16_t v)
    {
        u8(static_cast<std::uint8_t>(v));
        u8(static_cast<std::uint8_t>(v >> 8));
    }

    void
    u32(std::uint32_t v)
    {
        u16(static_cast<std::uint16_t>(v));
        u16(static_cast<std::uint16_t>(v >> 16));
    }

    void
    u64(std::uint64_t v)
    {
        u32(static_cast<std::uint32_t>(v));
        u32(static_cast<std::uint32_t>(v >> 32));
    }

    void
    i8(std::int8_t v)
    {
        u8(static_cast<std::uint8_t>(v));
    }

    void
    i64(std::int64_t v)
    {
        u64(static_cast<std::uint64_t>(v));
    }

    void
    b(bool v)
    {
        u8(v ? 1 : 0);
    }

    void
    f64(double v)
    {
        std::uint64_t bits;
        static_assert(sizeof bits == sizeof v, "double is 64-bit");
        std::memcpy(&bits, &v, sizeof bits);
        u64(bits);
    }

    void
    bytes(const void *data, std::size_t n)
    {
        const auto *p = static_cast<const std::uint8_t *>(data);
        buf.insert(buf.end(), p, p + n);
    }

    void
    str(const std::string &s)
    {
        u64(s.size());
        bytes(s.data(), s.size());
    }

    const std::vector<std::uint8_t> &buffer() const { return buf; }
    std::vector<std::uint8_t> take() { return std::move(buf); }
    std::size_t size() const { return buf.size(); }

  private:
    std::vector<std::uint8_t> buf;
};

/** Bounds-checked little-endian decoder over a read-only span. */
class BinReader
{
  public:
    BinReader(const void *data, std::size_t size)
        : base(static_cast<const std::uint8_t *>(data)), len(size)
    {
    }

    explicit BinReader(const std::vector<std::uint8_t> &v)
        : BinReader(v.data(), v.size())
    {
    }

    std::uint8_t
    u8()
    {
        if (pos + 1 > len) {
            failed = true;
            return 0;
        }
        return base[pos++];
    }

    std::uint16_t
    u16()
    {
        const std::uint16_t lo = u8();
        return static_cast<std::uint16_t>(lo | (std::uint16_t(u8()) << 8));
    }

    std::uint32_t
    u32()
    {
        const std::uint32_t lo = u16();
        return lo | (std::uint32_t(u16()) << 16);
    }

    std::uint64_t
    u64()
    {
        const std::uint64_t lo = u32();
        return lo | (std::uint64_t(u32()) << 32);
    }

    std::int8_t i8() { return static_cast<std::int8_t>(u8()); }
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

    bool
    b()
    {
        const std::uint8_t v = u8();
        if (v > 1)
            failed = true;
        return v == 1;
    }

    double
    f64()
    {
        const std::uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof v);
        return v;
    }

    bool
    bytes(void *out, std::size_t n)
    {
        if (pos + n > len || pos + n < pos) {
            failed = true;
            return false;
        }
        std::memcpy(out, base + pos, n);
        pos += n;
        return true;
    }

    std::string
    str()
    {
        const std::uint64_t n = u64();
        if (failed || n > remaining()) {
            failed = true;
            return {};
        }
        std::string s(reinterpret_cast<const char *>(base + pos),
                      static_cast<std::size_t>(n));
        pos += static_cast<std::size_t>(n);
        return s;
    }

    /**
     * Read an element count that will drive a container resize.
     * Rejects counts that could not possibly fit in the remaining
     * payload (each element occupies >= @p minBytesPerElem encoded
     * bytes), bounding allocations by the file size even when the
     * length field itself is corrupt.
     */
    std::size_t
    count(std::size_t minBytesPerElem = 1)
    {
        const std::uint64_t n = u64();
        if (failed || minBytesPerElem == 0 ||
            n > remaining() / minBytesPerElem) {
            failed = true;
            return 0;
        }
        return static_cast<std::size_t>(n);
    }

    /** Mark the stream corrupt (semantic validation failed). */
    void fail() { failed = true; }

    bool ok() const { return !failed; }
    std::size_t remaining() const { return len - pos; }
    std::size_t offset() const { return pos; }
    bool atEnd() const { return pos == len; }

  private:
    const std::uint8_t *base;
    std::size_t len;
    std::size_t pos = 0;
    bool failed = false;
};

} // namespace lvpsim
