/**
 * @file
 * gem5-flavoured status/error reporting helpers.
 *
 * panic()  - an internal simulator invariant was violated (a bug); aborts.
 * fatal()  - the user asked for something unsupported; exits cleanly.
 * warn()   - something questionable happened but simulation continues.
 * inform() - plain status output.
 */

#pragma once

#include <cstdarg>

namespace lvpsim
{

[[noreturn]] void panicImpl(const char *file, int line,
                            const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

[[noreturn]] void fatalImpl(const char *file, int line,
                            const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

void warnImpl(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

void informImpl(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

[[noreturn]] void assertFailImpl(const char *file, int line,
                                 const char *cond, const char *fmt,
                                 ...)
    __attribute__((format(printf, 4, 5)));

} // namespace lvpsim

#define lvp_panic(...) \
    ::lvpsim::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define lvp_fatal(...) \
    ::lvpsim::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define lvp_warn(...) ::lvpsim::warnImpl(__VA_ARGS__)
#define lvp_inform(...) ::lvpsim::informImpl(__VA_ARGS__)

/** panic() unless the given simulator invariant holds. */
#define lvp_assert(cond, fmt, ...)                                      \
    do {                                                                \
        if (!(cond))                                                    \
            ::lvpsim::assertFailImpl(__FILE__, __LINE__, #cond, fmt     \
                                     __VA_OPT__(,) __VA_ARGS__);        \
    } while (0)

