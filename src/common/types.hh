/**
 * @file
 * Fundamental scalar types shared by every lvpsim library.
 */

#pragma once

#include <cstdint>

namespace lvpsim
{

/** Virtual byte address (the paper models 49-bit virtual addresses). */
using Addr = std::uint64_t;

/** A 64-bit architectural data value. */
using Value = std::uint64_t;

/** Simulated clock cycle. */
using Cycle = std::uint64_t;

/** Global dynamic instruction sequence number (1-based; 0 = invalid). */
using InstSeqNum = std::uint64_t;

/** Architectural register identifier. */
using RegId = std::uint16_t;

/** Sentinel meaning "no register". */
constexpr RegId invalidReg = 0xffff;

/** Number of modeled architectural integer registers. */
constexpr RegId numArchRegs = 64;

} // namespace lvpsim

