/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All randomness in lvpsim (FPC probabilistic increments, synthetic
 * workload data, replacement tie-breaks) flows through seeded instances
 * of Xoshiro256** so that every simulation is bit-for-bit reproducible.
 */

#pragma once

#include <array>
#include <cstdint>

namespace lvpsim
{

/** SplitMix64: used to expand a single seed into generator state. */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : state(seed) {}

    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

  private:
    std::uint64_t state;
};

/**
 * Xoshiro256** 1.0 by Blackman and Vigna. Small, fast, and high quality;
 * more than adequate for simulation randomness.
 */
class Xoshiro256
{
  public:
    using result_type = std::uint64_t;

    explicit Xoshiro256(std::uint64_t seed = 0x1234567890abcdefull)
    {
        SplitMix64 sm(seed);
        for (auto &w : s)
            w = sm.next();
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type(0); }

    /**
     * Serialization access (pipeline/snapshot_io): the raw 256-bit
     * engine state, so a restored checkpoint resumes the exact
     * stream rather than reseeding.
     */
    std::array<std::uint64_t, 4>
    rawState() const
    {
        return {s[0], s[1], s[2], s[3]};
    }

    void
    restoreRaw(const std::array<std::uint64_t, 4> &state)
    {
        for (int i = 0; i < 4; ++i)
            s[i] = state[static_cast<std::size_t>(i)];
    }

    result_type
    operator()()
    {
        return next();
    }

    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
        const std::uint64_t t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = rotl(s[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire-style rejection-free multiply-shift is fine here; the
        // tiny modulo bias of a plain multiply-high is irrelevant for
        // simulation purposes, but we use 128-bit multiply anyway.
        unsigned __int128 m =
            static_cast<unsigned __int128>(next()) * bound;
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Bernoulli trial that succeeds with probability @p p. */
    bool
    bernoulli(double p)
    {
        if (p >= 1.0)
            return true;
        if (p <= 0.0)
            return false;
        // 53-bit uniform double in [0, 1).
        const double u = (next() >> 11) * 0x1.0p-53;
        return u < p;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * 0x1.0p-53;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s[4];
};

} // namespace lvpsim

