/**
 * @file
 * Generic tagged prediction table.
 *
 * All four component predictors (and the accuracy monitor) are built on
 * PC- or context-indexed, partially tagged tables. The table is
 * direct-mapped by default, but supports a runtime-adjustable number of
 * ways because the paper's table-fusion mechanism (Section V-E) turns a
 * receiver's direct-mapped table into a set-associative one by grafting
 * donor tables on as extra ways.
 */

#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace lvpsim
{

template <typename PayloadT>
class TaggedTable
{
  public:
    struct Way
    {
        bool valid = false;
        std::uint64_t tag = 0;
        std::uint64_t lastUse = 0; ///< for LRU among fused ways
        PayloadT payload{};
    };

    /**
     * @param num_sets number of sets (power of two)
     * @param num_ways initial associativity (1 = direct mapped)
     */
    explicit TaggedTable(std::size_t num_sets = 0, unsigned num_ways = 1)
    {
        if (num_sets > 0)
            configure(num_sets, num_ways);
    }

    void
    configure(std::size_t num_sets, unsigned num_ways)
    {
        lvp_assert(num_sets >= 1, "need at least one set");
        lvp_assert(num_ways >= 1, "need at least one way");
        sets = num_sets;
        ways.assign(num_sets * num_ways, Way{});
        numWaysVal = num_ways;
        useClock = 0;
    }

    std::size_t numSets() const { return sets; }
    unsigned numWays() const { return numWaysVal; }
    std::size_t numEntries() const { return sets * numWaysVal; }
    bool empty() const { return sets == 0; }

    /**
     * Change associativity in place. Added ways come up invalid; way 0 of
     * every set (the receiver's own storage) is always preserved, which
     * matches the fusion algorithm's "receiver tables are maintained".
     */
    void
    setWays(unsigned num_ways)
    {
        lvp_assert(num_ways >= 1, "need at least one way");
        if (num_ways == numWaysVal)
            return;
        std::vector<Way> next(sets * num_ways);
        const unsigned keep = std::min(num_ways, numWaysVal);
        for (std::size_t s = 0; s < sets; ++s)
            for (unsigned w = 0; w < keep; ++w)
                next[s * num_ways + w] = ways[s * numWaysVal + w];
        ways.swap(next);
        numWaysVal = num_ways;
    }

    /** Invalidate ways [first, last) in every set (fusion flushes donors). */
    void
    flushWays(unsigned first, unsigned last)
    {
        lvp_assert(first <= last && last <= numWaysVal, "bad way range");
        for (std::size_t s = 0; s < sets; ++s)
            for (unsigned w = first; w < last; ++w)
                ways[s * numWaysVal + w] = Way{};
    }

    void flushAll() { flushWays(0, numWaysVal); }

    /** Find a valid matching way; returns nullptr on miss. */
    Way *
    lookup(std::uint64_t index, std::uint64_t tag)
    {
        const std::size_t s = index % sets;
        for (unsigned w = 0; w < numWaysVal; ++w) {
            Way &way = ways[s * numWaysVal + w];
            if (way.valid && way.tag == tag) {
                way.lastUse = ++useClock;
                return &way;
            }
        }
        return nullptr;
    }

    const Way *
    lookup(std::uint64_t index, std::uint64_t tag) const
    {
        const std::size_t s = index % sets;
        for (unsigned w = 0; w < numWaysVal; ++w) {
            const Way &way = ways[s * numWaysVal + w];
            if (way.valid && way.tag == tag)
                return &way;
        }
        return nullptr;
    }

    /**
     * Allocate (or re-find) the way for (index, tag): hit reuses the
     * entry, otherwise an invalid way is claimed, otherwise the LRU way
     * is victimized. The returned payload is reset on (re)allocation.
     *
     * @param[out] was_hit true iff the entry already existed.
     */
    Way &
    allocate(std::uint64_t index, std::uint64_t tag, bool *was_hit = nullptr)
    {
        const std::size_t s = index % sets;
        for (unsigned w = 0; w < numWaysVal; ++w) {
            Way &way = ways[s * numWaysVal + w];
            if (way.valid && way.tag == tag) {
                if (was_hit)
                    *was_hit = true;
                way.lastUse = ++useClock;
                return way;
            }
        }
        if (was_hit)
            *was_hit = false;
        // Miss: claim an invalid way, else evict the LRU way.
        Way *victim = &ways[s * numWaysVal];
        for (unsigned w = 0; w < numWaysVal; ++w) {
            Way &way = ways[s * numWaysVal + w];
            if (!way.valid) {
                victim = &way;
                break;
            }
            if (way.lastUse < victim->lastUse)
                victim = &way;
        }
        victim->valid = true;
        victim->tag = tag;
        victim->lastUse = ++useClock;
        victim->payload = PayloadT{};
        return *victim;
    }

    /** Direct access to a way of a set (replacement-policy hooks). */
    Way &
    wayAt(std::uint64_t index, unsigned way = 0)
    {
        lvp_assert(way < numWaysVal, "way %u out of range", way);
        return ways[(index % sets) * numWaysVal + way];
    }

    /** Invalidate the entry for (index, tag) if present. */
    void
    invalidate(std::uint64_t index, std::uint64_t tag)
    {
        if (Way *w = lookup(index, tag))
            *w = Way{};
    }

    /** Count of valid entries (for tests/stats). */
    std::size_t
    validCount() const
    {
        std::size_t n = 0;
        for (const Way &w : ways)
            n += w.valid ? 1 : 0;
        return n;
    }

    /** Visit every valid way (qa state-bounds checks, stats). */
    template <typename Fn>
    void
    forEachValid(Fn &&fn) const
    {
        for (const Way &w : ways)
            if (w.valid)
                fn(w);
    }

  private:
    std::size_t sets = 0;
    unsigned numWaysVal = 1;
    std::uint64_t useClock = 0;
    std::vector<Way> ways;
};

} // namespace lvpsim

