/**
 * @file
 * A small statistics framework in the spirit of gem5's stats package:
 * named scalar counters and histograms that register themselves with a
 * StatGroup and can be dumped as aligned text.
 */

#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace lvpsim
{
namespace stats
{

class StatGroup;

/** Base class for anything dumpable. */
class StatBase
{
  public:
    StatBase(StatGroup &group, std::string name, std::string desc);
    virtual ~StatBase() = default;

    const std::string &name() const { return statName; }
    const std::string &desc() const { return statDesc; }

    virtual void dump(std::ostream &os) const = 0;
    virtual void reset() = 0;

  private:
    std::string statName;
    std::string statDesc;
};

/** A monotonically increasing (or settable) 64-bit counter. */
class Scalar : public StatBase
{
  public:
    Scalar(StatGroup &group, std::string name, std::string desc)
        : StatBase(group, std::move(name), std::move(desc))
    {}

    Scalar &operator++() { ++val; return *this; }
    Scalar &operator+=(std::uint64_t n) { val += n; return *this; }
    void set(std::uint64_t v) { val = v; }

    std::uint64_t value() const { return val; }

    void dump(std::ostream &os) const override;
    void reset() override { val = 0; }

  private:
    std::uint64_t val = 0;
};

/** A fixed-bucket histogram over [0, buckets); last bucket is overflow. */
class Histogram : public StatBase
{
  public:
    Histogram(StatGroup &group, std::string name, std::string desc,
              std::size_t num_buckets)
        : StatBase(group, std::move(name), std::move(desc)),
          counts(num_buckets, 0)
    {}

    void
    sample(std::size_t v, std::uint64_t n = 1)
    {
        if (v >= counts.size())
            v = counts.size() - 1;
        counts[v] += n;
    }

    std::uint64_t bucket(std::size_t i) const { return counts.at(i); }
    std::size_t numBuckets() const { return counts.size(); }
    std::uint64_t total() const;

    void dump(std::ostream &os) const override;
    void reset() override;

  private:
    std::vector<std::uint64_t> counts;
};

/** A collection of stats that dump together under a prefix. */
class StatGroup
{
  public:
    explicit StatGroup(std::string prefix = "") : groupPrefix(prefix) {}

    // Stats hold references into the group; neither moves nor copies.
    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    void registerStat(StatBase *s) { statList.push_back(s); }
    const std::string &prefix() const { return groupPrefix; }

    void dump(std::ostream &os) const;
    void resetAll();

  private:
    std::string groupPrefix;
    std::vector<StatBase *> statList;
};

} // namespace stats
} // namespace lvpsim

