/**
 * @file
 * POSIX file utilities for the on-disk checkpoint store
 * (docs/performance.md): read-only memory mapping, atomic
 * write-then-rename publication, O_EXCL claim files for
 * cross-process build-once, and the small directory helpers the
 * store's LRU trim needs.
 *
 * Everything here degrades instead of throwing: a file that cannot
 * be opened, mapped, or written yields an invalid object / false
 * return, and the store treats that as a miss. Only the std
 * filesystem-free POSIX surface is used so the utilities stay cheap
 * to include from src/common.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace lvpsim
{

/** A read-only mmap of an entire file. Invalid when open failed. */
class MappedFile
{
  public:
    MappedFile() = default;
    ~MappedFile() { reset(); }

    MappedFile(MappedFile &&other) noexcept
        : addr(other.addr), len(other.len)
    {
        other.addr = nullptr;
        other.len = 0;
    }

    MappedFile &
    operator=(MappedFile &&other) noexcept
    {
        if (this != &other) {
            reset();
            addr = other.addr;
            len = other.len;
            other.addr = nullptr;
            other.len = 0;
        }
        return *this;
    }

    MappedFile(const MappedFile &) = delete;
    MappedFile &operator=(const MappedFile &) = delete;

    /** Map @p path read-only; returns an invalid object on failure. */
    static MappedFile open(const std::string &path);

    /** True when a non-empty file is mapped. */
    bool valid() const { return addr != nullptr; }

    const std::uint8_t *
    data() const
    {
        return static_cast<const std::uint8_t *>(addr);
    }

    std::size_t size() const { return len; }

    void reset();

  private:
    void *addr = nullptr;
    std::size_t len = 0;
};

/**
 * Write @p n bytes to @p path atomically: the data lands in a
 * uniquely named temp file in the same directory, is fsync'd, and is
 * rename(2)d over the target, so readers only ever observe either no
 * file or the complete file.
 */
bool atomicWriteFile(const std::string &path, const void *data,
                     std::size_t n);

/** mkdir -p. True when the directory exists on return. */
bool makeDirs(const std::string &path);

/** Size of @p path in bytes, or -1 when it does not exist. */
std::int64_t fileSize(const std::string &path);

/** Seconds component of @p path's mtime, or -1 when missing. */
std::int64_t fileMtime(const std::string &path);

/** Best-effort: bump @p path's mtime to now (for LRU recency). */
void touchFile(const std::string &path);

/** unlink(2); true on success. */
bool removeFile(const std::string &path);

/** One regular file inside a store directory listing. */
struct DirEntry
{
    std::string name;         ///< basename, not the full path
    std::uint64_t sizeBytes;
    std::int64_t mtimeSec;
};

/** Regular files directly inside @p path (no recursion, no order). */
std::vector<DirEntry> listDir(const std::string &path);

/** Wall-clock seconds since the epoch (for claim-file staleness). */
std::int64_t wallClockSeconds();

/**
 * A cross-process claim on a store key: created with
 * O_CREAT|O_EXCL, so exactly one process acquires it; the owner
 * unlinks it on release (or destruction). Losers poll for the claim
 * to disappear and break claims whose mtime is older than a
 * staleness bound (a crashed owner must not wedge every later run).
 */
class ClaimFile
{
  public:
    ClaimFile() = default;
    ~ClaimFile() { release(); }

    ClaimFile(ClaimFile &&other) noexcept : path(std::move(other.path))
    {
        other.path.clear();
    }

    ClaimFile &
    operator=(ClaimFile &&other) noexcept
    {
        if (this != &other) {
            release();
            path = std::move(other.path);
            other.path.clear();
        }
        return *this;
    }

    ClaimFile(const ClaimFile &) = delete;
    ClaimFile &operator=(const ClaimFile &) = delete;

    /** Try to create @p claimPath exclusively. */
    static ClaimFile tryAcquire(const std::string &claimPath);

    bool owned() const { return !path.empty(); }

    /** Unlink the claim (idempotent). */
    void release();

  private:
    std::string path; ///< empty when not owned
};

} // namespace lvpsim
