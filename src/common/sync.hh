/**
 * @file
 * Capability-annotated mutex wrappers for Clang thread-safety
 * analysis (common/thread_annotations.hh).
 *
 * libstdc++'s `std::mutex` / `std::shared_mutex` carry no capability
 * attributes, so `GUARDED_BY(someStdMutex)` is rejected by Clang's
 * analysis. These zero-overhead wrappers annotate the same
 * primitives so every lock/unlock is visible to `-Wthread-safety`:
 *
 *   Mutex / SharedMutex      the capabilities
 *   MutexLock                lock_guard equivalent (exclusive)
 *   UniqueLock               unique_lock equivalent; exposes the
 *                            underlying std::unique_lock for
 *                            condition-variable waits
 *   WriterLock / ReaderLock  scoped shared_mutex access
 *
 * All shared mutable state in src/ hangs off these types — the
 * lvplint `lock-discipline` check flags raw std:: mutexes in model
 * code and unannotated members of mutex-holding classes
 * (docs/static_analysis.md).
 */

#pragma once

#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.hh"

namespace lvpsim
{

/** `std::mutex` as a Clang capability. */
class CAPABILITY("mutex") Mutex
{
  public:
    void lock() ACQUIRE() { m.lock(); }
    void unlock() RELEASE() { m.unlock(); }
    bool try_lock() TRY_ACQUIRE(true) { return m.try_lock(); }

    /** The wrapped mutex, for condition-variable waits (the wait
     *  contract keeps the capability held across the call, which is
     *  exactly what the analysis assumes). */
    std::mutex &native() { return m; }

  private:
    std::mutex m;
};

/** `std::shared_mutex` as a Clang capability. */
class CAPABILITY("shared_mutex") SharedMutex
{
  public:
    void lock() ACQUIRE() { m.lock(); }
    void unlock() RELEASE() { m.unlock(); }
    bool try_lock() TRY_ACQUIRE(true) { return m.try_lock(); }
    void lock_shared() ACQUIRE_SHARED() { m.lock_shared(); }
    void unlock_shared() RELEASE_SHARED() { m.unlock_shared(); }
    bool try_lock_shared() TRY_ACQUIRE_SHARED(true)
    {
        return m.try_lock_shared();
    }

  private:
    std::shared_mutex m;
};

/** `std::lock_guard` equivalent over Mutex. */
class SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &m) ACQUIRE(m) : mu(m) { mu.lock(); }
    ~MutexLock() RELEASE() { mu.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mu;
};

/**
 * `std::unique_lock` equivalent over Mutex. Locks on construction;
 * native() hands the underlying std::unique_lock to
 * condition_variable / condition_variable_any waits.
 */
class SCOPED_CAPABILITY UniqueLock
{
  public:
    explicit UniqueLock(Mutex &m) ACQUIRE(m) : lk(m.native()) {}
    ~UniqueLock() RELEASE() {}

    /** Early release (the dtor then has nothing left to do). */
    void unlock() RELEASE() { lk.unlock(); }

    std::unique_lock<std::mutex> &native() { return lk; }

    UniqueLock(const UniqueLock &) = delete;
    UniqueLock &operator=(const UniqueLock &) = delete;

  private:
    std::unique_lock<std::mutex> lk;
};

/** Scoped exclusive (writer) access to a SharedMutex. */
class SCOPED_CAPABILITY WriterLock
{
  public:
    explicit WriterLock(SharedMutex &m) ACQUIRE(m) : mu(m)
    {
        mu.lock();
    }
    ~WriterLock() RELEASE() { mu.unlock(); }

    WriterLock(const WriterLock &) = delete;
    WriterLock &operator=(const WriterLock &) = delete;

  private:
    SharedMutex &mu;
};

/** Scoped shared (reader) access to a SharedMutex. */
class SCOPED_CAPABILITY ReaderLock
{
  public:
    explicit ReaderLock(SharedMutex &m) ACQUIRE_SHARED(m) : mu(m)
    {
        mu.lock_shared();
    }
    ~ReaderLock() RELEASE_GENERIC() { mu.unlock_shared(); }

    ReaderLock(const ReaderLock &) = delete;
    ReaderLock &operator=(const ReaderLock &) = delete;

  private:
    SharedMutex &mu;
};

} // namespace lvpsim
