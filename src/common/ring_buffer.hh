/**
 * @file
 * Fixed-capacity circular buffer with the deque-like subset of API
 * the pipeline queues need (see docs/performance.md).
 *
 * The cycle-level core pushes/pops its queues (ROB, fetch buffer,
 * PAQ, LDQ, STQ) millions of times per simulated second. std::deque
 * allocates and frees ~512-byte blocks as the queue head chases the
 * tail through memory, and its segmented layout defeats both the
 * hardware prefetcher and the binary searches the core runs over the
 * ROB. This buffer stores elements in one contiguous power-of-two
 * allocation sized once from CoreConfig, so steady-state push/pop is
 * two index updates and iteration is a masked linear walk.
 *
 * Semantics:
 *  - capacity is fixed by configure() (or the sizing constructor);
 *    pushing beyond it is a checked error (lvp_assert), because every
 *    core queue is bounded by config and checked before push.
 *  - elements never move: push/pop invalidate no references to other
 *    elements (index-stable). Iterators address logical positions
 *    (front-relative), so pop_front shifts what position 0 names --
 *    same as indexing a deque.
 *  - iterators are random-access, so std::lower_bound over a seq-
 *    sorted ring works and is fast (contiguous probes).
 */

#pragma once

#include <cstddef>
#include <iterator>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace lvpsim
{

template <typename T>
class RingBuffer
{
  public:
    RingBuffer() = default;

    explicit RingBuffer(std::size_t capacity) { configure(capacity); }

    /**
     * Size the buffer for @p capacity elements (rounded up to a power
     * of two internally) and empty it. Not for use while elements are
     * live; the core calls this once at construction.
     */
    void configure(std::size_t capacity)
    {
        lvp_assert(capacity > 0, "ring buffer needs capacity");
        const std::size_t slots_n =
            std::size_t(1) << ceilLog2(capacity);
        slots.assign(slots_n, T{});
        maskBits = slots_n - 1;
        head = 0;
        count = 0;
    }

    bool empty() const { return count == 0; }
    std::size_t size() const { return count; }
    /** Physical slot count (>= the capacity configure() was given). */
    std::size_t capacity() const { return slots.size(); }

    T &operator[](std::size_t i) { return slots[(head + i) & maskBits]; }
    const T &operator[](std::size_t i) const
    {
        return slots[(head + i) & maskBits];
    }

    T &front() { return slots[head]; }
    const T &front() const { return slots[head]; }
    T &back() { return slots[(head + count - 1) & maskBits]; }
    const T &back() const
    {
        return slots[(head + count - 1) & maskBits];
    }

    void push_back(const T &v)
    {
        lvp_assert(count < slots.size(), "ring buffer overflow");
        slots[(head + count) & maskBits] = v;
        ++count;
    }

    void push_back(T &&v)
    {
        lvp_assert(count < slots.size(), "ring buffer overflow");
        slots[(head + count) & maskBits] = std::move(v);
        ++count;
    }

    void pop_front()
    {
        lvp_assert(count > 0, "pop_front on empty ring buffer");
        head = (head + 1) & maskBits;
        --count;
    }

    void pop_back()
    {
        lvp_assert(count > 0, "pop_back on empty ring buffer");
        --count;
    }

    void clear()
    {
        head = 0;
        count = 0;
    }

    template <bool Const>
    class Iter
    {
        using BufPtr =
            std::conditional_t<Const, const RingBuffer *, RingBuffer *>;

      public:
        using iterator_category = std::random_access_iterator_tag;
        using value_type = T;
        using difference_type = std::ptrdiff_t;
        using reference = std::conditional_t<Const, const T &, T &>;
        using pointer = std::conditional_t<Const, const T *, T *>;

        Iter() = default;
        Iter(BufPtr b, std::size_t p) : buf(b), pos(p) {}
        /** iterator -> const_iterator conversion. */
        template <bool C = Const, typename = std::enable_if_t<C>>
        Iter(const Iter<false> &o) : buf(o.buf), pos(o.pos)
        {
        }

        reference operator*() const { return (*buf)[pos]; }
        pointer operator->() const { return &(*buf)[pos]; }
        reference operator[](difference_type n) const
        {
            return (*buf)[pos + std::size_t(n)];
        }

        Iter &operator++() { ++pos; return *this; }
        Iter operator++(int) { Iter t = *this; ++pos; return t; }
        Iter &operator--() { --pos; return *this; }
        Iter operator--(int) { Iter t = *this; --pos; return t; }
        Iter &operator+=(difference_type n)
        {
            pos = std::size_t(difference_type(pos) + n);
            return *this;
        }
        Iter &operator-=(difference_type n) { return *this += -n; }
        friend Iter operator+(Iter it, difference_type n)
        {
            return it += n;
        }
        friend Iter operator+(difference_type n, Iter it)
        {
            return it += n;
        }
        friend Iter operator-(Iter it, difference_type n)
        {
            return it -= n;
        }
        friend difference_type operator-(const Iter &a, const Iter &b)
        {
            return difference_type(a.pos) - difference_type(b.pos);
        }

        friend bool operator==(const Iter &a, const Iter &b)
        {
            return a.pos == b.pos;
        }
        friend bool operator!=(const Iter &a, const Iter &b)
        {
            return a.pos != b.pos;
        }
        friend bool operator<(const Iter &a, const Iter &b)
        {
            return a.pos < b.pos;
        }
        friend bool operator>(const Iter &a, const Iter &b)
        {
            return a.pos > b.pos;
        }
        friend bool operator<=(const Iter &a, const Iter &b)
        {
            return a.pos <= b.pos;
        }
        friend bool operator>=(const Iter &a, const Iter &b)
        {
            return a.pos >= b.pos;
        }

      private:
        friend class Iter<true>;
        BufPtr buf = nullptr;
        std::size_t pos = 0; ///< logical (front-relative) position
    };

    using iterator = Iter<false>;
    using const_iterator = Iter<true>;
    using reverse_iterator = std::reverse_iterator<iterator>;
    using const_reverse_iterator = std::reverse_iterator<const_iterator>;

    iterator begin() { return {this, 0}; }
    iterator end() { return {this, count}; }
    const_iterator begin() const { return {this, 0}; }
    const_iterator end() const { return {this, count}; }
    const_iterator cbegin() const { return begin(); }
    const_iterator cend() const { return end(); }
    reverse_iterator rbegin() { return reverse_iterator(end()); }
    reverse_iterator rend() { return reverse_iterator(begin()); }
    const_reverse_iterator rbegin() const
    {
        return const_reverse_iterator(end());
    }
    const_reverse_iterator rend() const
    {
        return const_reverse_iterator(begin());
    }

  private:
    std::vector<T> slots;
    std::size_t maskBits = 0;
    std::size_t head = 0; ///< physical index of the front element
    std::size_t count = 0;
};

} // namespace lvpsim

