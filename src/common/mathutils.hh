/**
 * @file
 * Aggregation helpers. Per the paper's methodology (Section II-A):
 * arithmetic mean across workloads, geometric mean for IPC.
 */

#pragma once

#include <cmath>
#include <vector>

#include "common/logging.hh"

namespace lvpsim
{

inline double
arithMean(const std::vector<double> &xs)
{
    lvp_assert(!xs.empty(), "mean of empty vector");
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

inline double
geoMean(const std::vector<double> &xs)
{
    lvp_assert(!xs.empty(), "geomean of empty vector");
    double s = 0.0;
    for (double x : xs) {
        lvp_assert(x > 0.0, "geomean needs positive values, got %f", x);
        s += std::log(x);
    }
    return std::exp(s / static_cast<double>(xs.size()));
}

/** Relative speedup of @p x over @p base, as a fraction (0.05 = +5%). */
inline double
speedup(double x, double base)
{
    lvp_assert(base > 0.0, "bad base %f", base);
    return x / base - 1.0;
}

} // namespace lvpsim

