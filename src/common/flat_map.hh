/**
 * @file
 * Open-addressing hash map for the simulator's hot per-token /
 * per-PC bookkeeping (see docs/performance.md).
 *
 * std::unordered_map allocates one node per insert and chases a
 * pointer per lookup; the core and the predictors insert and erase
 * such entries on nearly every fetched load. This map keeps
 * key/value pairs inline in one power-of-two slot array with linear
 * probing, so a pre-sized (reserve()d) map does zero heap
 * allocations in steady state and lookups touch one or two cache
 * lines.
 *
 * Design points:
 *  - power-of-two capacity, SplitMix64-mixed key hash (common/
 *    bitutils.hh mix64) so low-entropy keys (tokens, PCs, trace
 *    indices) spread over the table;
 *  - max load factor 3/4; rehash doubles (growth still works when a
 *    caller under-reserves -- only steadiness, not correctness,
 *    depends on reserve());
 *  - erase uses backward-shift deletion (Knuth Algorithm R), so
 *    there are no tombstones and probe chains never rot.
 *
 * API subset used by the simulator: find / operator[] / emplace /
 * erase(key) / erase(iterator) / size / empty / clear / reserve and
 * forward iteration. Keys must be integral (or trivially castable to
 * std::uint64_t via the Hash functor); values must be default-
 * constructible for operator[].
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace lvpsim
{

/** Default hash: SplitMix64 finalizer over the key's integer value. */
struct FlatHash
{
    template <typename K>
    std::uint64_t operator()(const K &k) const
    {
        static_assert(std::is_integral<K>::value,
                      "FlatHash needs an integral key");
        return mix64(static_cast<std::uint64_t>(k));
    }
};

template <typename K, typename V, typename Hash = FlatHash>
class FlatMap
{
  public:
    using value_type = std::pair<K, V>;

    FlatMap() = default;

    /** Pre-size for @p expected live entries (no rehash below that). */
    explicit FlatMap(std::size_t expected) { reserve(expected); }

    /**
     * Ensure capacity for @p expected entries without rehashing:
     * slots = next power of two holding @p expected at load <= 3/4.
     */
    void reserve(std::size_t expected)
    {
        std::size_t want = minSlots;
        while (expected * 4 > want * 3)
            want <<= 1;
        if (want > slotCount())
            rehash(want);
    }

    std::size_t size() const { return count; }
    bool empty() const { return count == 0; }
    /** Physical slot count (0 until first insert/reserve). */
    std::size_t capacity() const { return slotCount(); }

    void clear()
    {
        std::fill(used.begin(), used.end(), std::uint8_t(0));
        count = 0;
    }

    template <bool Const>
    class Iter
    {
        using MapPtr =
            std::conditional_t<Const, const FlatMap *, FlatMap *>;

      public:
        using iterator_category = std::forward_iterator_tag;
        using value_type = FlatMap::value_type;
        using difference_type = std::ptrdiff_t;
        using reference =
            std::conditional_t<Const, const value_type &, value_type &>;
        using pointer =
            std::conditional_t<Const, const value_type *, value_type *>;

        Iter() = default;
        Iter(MapPtr m, std::size_t s) : map(m), slot(s) {}
        template <bool C = Const, typename = std::enable_if_t<C>>
        Iter(const Iter<false> &o) : map(o.map), slot(o.slot)
        {
        }

        reference operator*() const { return map->slots[slot]; }
        pointer operator->() const { return &map->slots[slot]; }

        Iter &operator++()
        {
            ++slot;
            skipFree();
            return *this;
        }
        Iter operator++(int)
        {
            Iter t = *this;
            ++*this;
            return t;
        }

        friend bool operator==(const Iter &a, const Iter &b)
        {
            return a.slot == b.slot;
        }
        friend bool operator!=(const Iter &a, const Iter &b)
        {
            return a.slot != b.slot;
        }

      private:
        friend class FlatMap;
        friend class Iter<true>;
        void skipFree()
        {
            while (slot < map->slotCount() && !map->used[slot])
                ++slot;
        }
        MapPtr map = nullptr;
        std::size_t slot = 0;
    };

    using iterator = Iter<false>;
    using const_iterator = Iter<true>;

    iterator begin()
    {
        iterator it(this, 0);
        it.skipFree();
        return it;
    }
    iterator end() { return {this, slotCount()}; }
    const_iterator begin() const
    {
        const_iterator it(this, 0);
        it.skipFree();
        return it;
    }
    const_iterator end() const { return {this, slotCount()}; }

    iterator find(const K &key)
    {
        const std::size_t s = findSlot(key);
        return s == npos ? end() : iterator(this, s);
    }

    const_iterator find(const K &key) const
    {
        const std::size_t s = findSlot(key);
        return s == npos ? end() : const_iterator(this, s);
    }

    bool contains(const K &key) const { return findSlot(key) != npos; }

    V &operator[](const K &key)
    {
        return slots[insertSlot(key)].second;
    }

    /** Insert (key, V(args...)) if absent; first = entry, second =
     *  true iff inserted. */
    template <typename... Args>
    std::pair<iterator, bool> emplace(const K &key, Args &&...args)
    {
        const std::size_t before = count;
        const std::size_t s = insertSlot(key);
        const bool inserted = count != before;
        if (inserted)
            slots[s].second = V(std::forward<Args>(args)...);
        return {iterator(this, s), inserted};
    }

    /** Erase by key; returns the number of entries removed (0 or 1). */
    std::size_t erase(const K &key)
    {
        const std::size_t s = findSlot(key);
        if (s == npos)
            return 0;
        eraseSlot(s);
        return 1;
    }

    /**
     * Erase the entry at @p it (must be valid and dereferenceable).
     * Backward-shift deletion moves later chain members, so any other
     * outstanding iterator is invalidated -- callers here erase the
     * iterator they just find()'d and keep nothing else.
     */
    void erase(iterator it)
    {
        lvp_assert(it.map == this && it.slot < slotCount() &&
                       used[it.slot],
                   "erase of invalid flat map iterator");
        eraseSlot(it.slot);
    }

    /**
     * Serialization access (pipeline/snapshot_io.hh). The probe-chain
     * layout depends on the full insertion/erase history — reinserting
     * the live entries into a fresh map can land them in different
     * slots — so a bit-identical checkpoint restore must round-trip
     * the physical slot arrays verbatim rather than rebuild them.
     */
    const std::vector<value_type> &rawSlots() const { return slots; }
    const std::vector<std::uint8_t> &rawUsed() const { return used; }

    /** Restore a physical layout captured by rawSlots()/rawUsed(). */
    void restoreRaw(std::vector<value_type> newSlots,
                    std::vector<std::uint8_t> newUsed, std::size_t live)
    {
        lvp_assert(newSlots.size() == newUsed.size() &&
                       (newSlots.empty() || isPowerOf2(newSlots.size())),
                   "bad flat map raw restore");
        slots = std::move(newSlots);
        used = std::move(newUsed);
        maskBits = slots.empty() ? 0 : slots.size() - 1;
        count = live;
    }

  private:
    static constexpr std::size_t npos = ~std::size_t(0);
    static constexpr std::size_t minSlots = 16;

    std::size_t slotCount() const { return slots.size(); }

    std::size_t homeOf(const K &key) const
    {
        return std::size_t(Hash{}(key)) & maskBits;
    }

    /** Slot holding @p key, or npos. */
    std::size_t findSlot(const K &key) const
    {
        if (count == 0)
            return npos;
        std::size_t s = homeOf(key);
        while (used[s]) {
            if (slots[s].first == key)
                return s;
            s = (s + 1) & maskBits;
        }
        return npos;
    }

    /** Slot holding @p key, inserting a default entry if absent. */
    std::size_t insertSlot(const K &key)
    {
        if ((count + 1) * 4 > slotCount() * 3)
            rehash(slotCount() ? slotCount() * 2 : minSlots);
        std::size_t s = homeOf(key);
        while (used[s]) {
            if (slots[s].first == key)
                return s;
            s = (s + 1) & maskBits;
        }
        used[s] = 1;
        slots[s].first = key;
        slots[s].second = V{};
        ++count;
        return s;
    }

    void eraseSlot(std::size_t s)
    {
        // Backward-shift deletion: pull every displaced chain member
        // whose home precedes the hole back over it, leaving no
        // tombstone (Knuth TAOCP vol. 3, Algorithm R).
        std::size_t hole = s;
        std::size_t probe = s;
        while (true) {
            probe = (probe + 1) & maskBits;
            if (!used[probe])
                break;
            const std::size_t home = homeOf(slots[probe].first);
            // probe's entry may move into the hole iff its home lies
            // at or before the hole along the probe path.
            if (((probe - home) & maskBits) >=
                ((probe - hole) & maskBits)) {
                slots[hole] = std::move(slots[probe]);
                hole = probe;
            }
        }
        used[hole] = 0;
        --count;
    }

    void rehash(std::size_t new_slots)
    {
        lvp_assert(isPowerOf2(new_slots), "flat map slots not pow2");
        std::vector<value_type> old_slots = std::move(slots);
        std::vector<std::uint8_t> old_used = std::move(used);
        slots.assign(new_slots, value_type{});
        used.assign(new_slots, 0);
        maskBits = new_slots - 1;
        count = 0;
        for (std::size_t i = 0; i < old_slots.size(); ++i) {
            if (!old_used[i])
                continue;
            const std::size_t s = insertSlotNoGrow(old_slots[i].first);
            slots[s].second = std::move(old_slots[i].second);
        }
    }

    std::size_t insertSlotNoGrow(const K &key)
    {
        std::size_t s = homeOf(key);
        while (used[s])
            s = (s + 1) & maskBits;
        used[s] = 1;
        slots[s].first = key;
        ++count;
        return s;
    }

    std::vector<value_type> slots;
    std::vector<std::uint8_t> used;
    std::size_t maskBits = 0;
    std::size_t count = 0;
};

} // namespace lvpsim

