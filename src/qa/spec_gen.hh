/**
 * @file
 * Seeded KernelSpec generator: workload-space fuzzing.
 *
 * genKernelSpec() draws a random — but valid by construction — spec
 * from the DSL's parameter space: 1..3 phases, 1..4 streams each,
 * mixed pattern primitives, weights, working-set sizes, fills and
 * mix strategies. Together with trace::computeTruthProfile() this
 * turns the property tier from seed-space fuzzing (one fixed kernel,
 * many seeds) into workload-space fuzzing (many kernels with known
 * ground truth); see docs/kernel_dsl.md.
 */

#pragma once

#include "qa/generators.hh"
#include "trace/kernel_spec.hh"

namespace lvpsim
{
namespace qa
{

/** Bounds for genKernelSpec(). */
struct SpecGenConfig
{
    unsigned maxPhases = 3;
    unsigned maxStreams = 4;
    /** Allow a final infinite (iters=0) phase. */
    bool allowInfinite = true;
    /** Allow Pick streams (statistical rather than exact truth). */
    bool allowPick = true;
    /** Allow Chase streams (flag-dependent op counts). */
    bool allowChase = true;
};

/**
 * Draw a random valid spec. The result always passes
 * trace::validateKernelSpec() and round-trips through the `synth:`
 * grammar.
 */
trace::KernelSpec genKernelSpec(Gen &g, const SpecGenConfig &cfg = {});

} // namespace qa
} // namespace lvpsim
