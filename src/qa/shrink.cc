#include "qa/shrink.hh"

#include <algorithm>

namespace lvpsim
{
namespace qa
{

using trace::MicroOp;

namespace
{

/** Delete ops [at, at+len) from a copy of @p ops. */
std::vector<MicroOp>
withoutChunk(const std::vector<MicroOp> &ops, std::size_t at,
             std::size_t len)
{
    std::vector<MicroOp> out;
    out.reserve(ops.size() - len);
    out.insert(out.end(), ops.begin(), ops.begin() + at);
    out.insert(out.end(), ops.begin() + at + len, ops.end());
    return out;
}

/** One pass of chunk deletion at a fixed chunk size. */
bool
deletionPass(std::vector<MicroOp> &ops, std::size_t chunk,
             const TraceProperty &holds, ShrinkStats *stats)
{
    bool shrunk = false;
    std::size_t at = 0;
    while (at < ops.size() && ops.size() > 1) {
        const std::size_t len = std::min(chunk, ops.size() - at);
        auto candidate = withoutChunk(ops, at, len);
        if (stats)
            ++stats->candidatesTried;
        if (!candidate.empty() && !holds(candidate)) {
            ops = std::move(candidate); // still fails: keep the cut
            // Do not advance: the next chunk slid into place.
        } else {
            at += len;
        }
    }
    return shrunk;
}

/** Try to simplify individual ops without changing the failure. */
void
simplifyPass(std::vector<MicroOp> &ops, const TraceProperty &holds,
             ShrinkStats *stats)
{
    for (std::size_t i = 0; i < ops.size(); ++i) {
        MicroOp &op = ops[i];
        auto try_with = [&](MicroOp replacement) {
            auto candidate = ops;
            candidate[i] = replacement;
            if (stats)
                ++stats->candidatesTried;
            if (!holds(candidate))
                op = replacement;
        };
        // Fewer sources.
        if (op.numSrcs() > 0) {
            MicroOp m = op;
            m.src = {invalidReg, invalidReg, invalidReg};
            try_with(m);
        }
        // Simpler values.
        if ((op.isLoad() || op.isStore()) && op.memValue != 0) {
            MicroOp m = op;
            m.memValue = 0;
            try_with(m);
        }
    }
}

} // anonymous namespace

std::vector<MicroOp>
shrinkTrace(std::vector<MicroOp> failing, const TraceProperty &holds,
            ShrinkStats *stats, unsigned max_rounds)
{
    if (stats) {
        *stats = ShrinkStats{};
        stats->originalOps = failing.size();
    }
    for (unsigned round = 0; round < max_rounds; ++round) {
        const std::size_t before = failing.size();
        // Large cuts first: halves, quarters, ... single ops.
        for (std::size_t chunk = std::max<std::size_t>(
                 1, failing.size() / 2);
             ; chunk /= 2) {
            deletionPass(failing, chunk, holds, stats);
            if (chunk <= 1)
                break;
        }
        if (failing.size() == before)
            break; // deletion fixpoint reached
    }
    simplifyPass(failing, holds, stats);
    if (stats)
        stats->finalOps = failing.size();
    return failing;
}

} // namespace qa
} // namespace lvpsim
