/**
 * @file
 * Candidate generation for Shrinkable<trace::KernelSpec>.
 *
 * Ordering matters: structural deletions (phase chunks, stream
 * chunks — halves down to singles, mirroring shrinkTrace's chunk
 * schedule) come before field minimization, so the greedy loop
 * removes whole dimensions of the workload before polishing numbers.
 * Every candidate is validated; invalid mutations are dropped rather
 * than repaired so the shrinker stays inside the DSL's invariants.
 */

#include "qa/shrink_spec.hh"

#include <algorithm>

namespace lvpsim
{
namespace qa
{

using trace::ChaseOrder;
using trace::FillKind;
using trace::GlueOp;
using trace::KernelSpec;
using trace::MixStrategy;
using trace::PatternKind;
using trace::StreamSpec;

namespace
{

void
pushIfValid(std::vector<KernelSpec> &out, KernelSpec cand)
{
    if (trace::validateKernelSpec(cand).empty())
        out.push_back(std::move(cand));
}

/** Delete [i, i+len) chunks at halving granularities. */
template <typename Vec, typename Emit>
void
chunkDeletions(const Vec &xs, const Emit &emit)
{
    for (std::size_t len = xs.size() / 2; len >= 1; len /= 2) {
        for (std::size_t i = 0; i + len <= xs.size(); i += len) {
            Vec smaller;
            smaller.reserve(xs.size() - len);
            smaller.insert(smaller.end(), xs.begin(), xs.begin() + i);
            smaller.insert(smaller.end(), xs.begin() + i + len,
                           xs.end());
            if (!smaller.empty())
                emit(std::move(smaller));
        }
        if (len == 1)
            break;
    }
}

/** Halve @p v toward @p floor (first jump-to-floor, then halving). */
std::vector<std::uint64_t>
smallerValues(std::uint64_t v, std::uint64_t floor)
{
    std::vector<std::uint64_t> out;
    if (v <= floor)
        return out;
    out.push_back(floor);
    for (std::uint64_t c = v / 2; c > floor; c /= 2)
        out.push_back(c);
    return out;
}

} // anonymous namespace

std::size_t
Shrinkable<KernelSpec>::size(const KernelSpec &spec)
{
    std::size_t n = spec.phases.size();
    for (const auto &ph : spec.phases)
        n += ph.streams.size();
    return n;
}

std::vector<KernelSpec>
Shrinkable<KernelSpec>::candidates(const KernelSpec &spec)
{
    std::vector<KernelSpec> out;

    // 1. Drop phase chunks.
    chunkDeletions(spec.phases, [&](auto phases) {
        KernelSpec c;
        c.phases = std::move(phases);
        pushIfValid(out, std::move(c));
    });

    // 2. Drop stream chunks inside each phase.
    for (std::size_t pi = 0; pi < spec.phases.size(); ++pi)
        chunkDeletions(spec.phases[pi].streams, [&](auto streams) {
            KernelSpec c = spec;
            c.phases[pi].streams = std::move(streams);
            pushIfValid(out, std::move(c));
        });

    // 3. Phase-field minimization: fewer iterations, plain mix,
    //    automatic base address.
    for (std::size_t pi = 0; pi < spec.phases.size(); ++pi) {
        const auto &ph = spec.phases[pi];
        for (std::uint64_t it : smallerValues(ph.iters, 1)) {
            KernelSpec c = spec;
            c.phases[pi].iters = it;
            pushIfValid(out, std::move(c));
        }
        if (ph.mix != MixStrategy::Seq) {
            KernelSpec c = spec;
            c.phases[pi].mix = MixStrategy::Seq;
            pushIfValid(out, std::move(c));
        }
        if (ph.base != 0) {
            KernelSpec c = spec;
            c.phases[pi].base = 0;
            pushIfValid(out, std::move(c));
        }
    }

    // 4. Stream-field minimization toward the kind's defaults.
    for (std::size_t pi = 0; pi < spec.phases.size(); ++pi) {
        for (std::size_t si = 0; si < spec.phases[pi].streams.size();
             ++si) {
            const StreamSpec &s = spec.phases[pi].streams[si];
            const StreamSpec def = trace::defaultStream(s.kind);
            auto mutate = [&](auto fn) {
                KernelSpec c = spec;
                fn(c.phases[pi].streams[si]);
                pushIfValid(out, std::move(c));
            };
            if (s.weight > 1)
                for (std::uint64_t w : smallerValues(s.weight, 1))
                    mutate([&](StreamSpec &m) {
                        m.weight = unsigned(w);
                    });
            for (std::uint64_t v : smallerValues(s.wset, 2))
                mutate([&](StreamSpec &m) { m.wset = v; });
            for (std::uint64_t v :
                 smallerValues(s.period, def.period))
                mutate([&](StreamSpec &m) {
                    m.period = unsigned(v);
                });
            for (std::uint64_t v :
                 smallerValues(s.entries, def.entries))
                mutate([&](StreamSpec &m) {
                    m.entries = unsigned(v);
                });
            if (s.step != def.step)
                mutate([&](StreamSpec &m) { m.step = def.step; });
            if (s.esz != 8)
                mutate([&](StreamSpec &m) { m.esz = 8; });
            if (s.glue != GlueOp::Add)
                mutate([&](StreamSpec &m) { m.glue = GlueOp::Add; });
            if (s.fill != FillKind::Seq)
                mutate([&](StreamSpec &m) {
                    m.fill = FillKind::Seq;
                });
            if (s.fillBase != def.fillBase || s.fillStep != def.fillStep)
                mutate([&](StreamSpec &m) {
                    m.fillBase = def.fillBase;
                    m.fillStep = def.fillStep;
                });
            if (s.value != def.value)
                mutate([&](StreamSpec &m) { m.value = def.value; });
            if (s.order != ChaseOrder::Zigzag)
                mutate([&](StreamSpec &m) {
                    m.order = ChaseOrder::Zigzag;
                });
        }
    }
    return out;
}

} // namespace qa
} // namespace lvpsim
