/**
 * @file
 * Ideal family-model replay (see spec_oracles.hh for semantics).
 */

#include "qa/spec_oracles.hh"

#include <array>
#include <unordered_map>

namespace lvpsim
{
namespace qa
{

namespace
{

/** FNV-1a over the last 8 values: the ctx8 context id. */
std::uint64_t
hashHistory(const std::array<Value, 8> &h)
{
    std::uint64_t x = 1469598103934665603ull;
    for (Value v : h) {
        x ^= v;
        x *= 1099511628211ull;
    }
    return x;
}

struct PcState
{
    bool haveLast = false;
    Value lastVal = 0;
    unsigned addrCount = 0;
    Addr a1 = 0, a0 = 0;

    std::array<Value, 8> hist{}; ///< last 8 values, oldest first
    unsigned histLen = 0;

    // lvplint: allow(determinism) -- probed by key, never iterated
    std::unordered_map<Value, Value> ctx1Map;
    // lvplint: allow(determinism) -- probed by key, never iterated
    std::unordered_map<std::uint64_t, Value> ctx8Map;
    // lvplint: allow(determinism) -- probed by key, never iterated
    std::unordered_map<Addr, Addr> cap1Map;
};

} // anonymous namespace

OracleFamilyCounts
measureIdealFamilies(const std::vector<trace::MicroOp> &ops)
{
    OracleFamilyCounts out;
    // lvplint: allow(determinism) -- probed by key, never iterated
    std::unordered_map<Addr, PcState> byPc;

    for (const trace::MicroOp &op : ops) {
        if (!op.isPredictableLoad())
            continue;
        PcState &st = byPc[op.pc];
        const Addr addr = op.effAddr;
        const Value val = op.memValue;
        ++out.loads;

        bool any = false;
        if (st.haveLast && val == st.lastVal) {
            ++out.lvp;
            any = true;
        }
        if (st.addrCount >= 2 && addr == 2 * st.a1 - st.a0) {
            ++out.sap;
            any = true;
        }
        if (st.haveLast) {
            auto it = st.ctx1Map.find(st.lastVal);
            if (it != st.ctx1Map.end() && it->second == val) {
                ++out.ctx1;
                any = true;
            }
            st.ctx1Map[st.lastVal] = val;
        }
        if (st.histLen == 8) {
            const std::uint64_t id = hashHistory(st.hist);
            auto it = st.ctx8Map.find(id);
            if (it != st.ctx8Map.end() && it->second == val) {
                ++out.ctx8;
                any = true;
            }
            st.ctx8Map[id] = val;
        }
        if (st.addrCount >= 1) {
            auto it = st.cap1Map.find(st.a1);
            if (it != st.cap1Map.end() && it->second == addr) {
                ++out.cap1;
                any = true;
            }
            st.cap1Map[st.a1] = addr;
        }
        if (any)
            ++out.unionHits;

        st.lastVal = val;
        st.haveLast = true;
        st.a0 = st.a1;
        st.a1 = addr;
        if (st.addrCount < 2)
            ++st.addrCount;
        if (st.histLen < 8) {
            st.hist[st.histLen++] = val;
        } else {
            for (unsigned i = 0; i + 1 < 8; ++i)
                st.hist[i] = st.hist[i + 1];
            st.hist[7] = val;
        }
    }
    return out;
}

} // namespace qa
} // namespace lvpsim
