/**
 * @file
 * Measured ideal-predictor family models for real traces.
 *
 * measureIdealFamilies() replays infinite-capacity, zero-latency
 * per-PC models over a MicroOp stream and counts, per predictable
 * load, which predictor *family* would have been correct:
 *
 *   - lvp:  last value of this PC (Pattern-1)
 *   - sap:  address stride 2*a1 - a0, value read from static memory
 *           (Pattern-2; address equality, matching spec_truth.cc)
 *   - ctx1: value observed after this PC's previous value (order-1
 *           value context, Pattern-3)
 *   - ctx8: value observed after the hash of this PC's last 8 values
 *           (deep context; upper-bounds finite-order VTAGE-like
 *           predictors)
 *   - cap1: address observed after this PC's previous address
 *           (order-1 address context)
 *
 * The per-load union of the five families upper-bounds any composite
 * built from them; the fuzz tier checks the real composite never
 * beats it (tests/test_spec_fuzz.cc) and the coverage_frontier tool
 * reports the gap per spec. The lvp / sap / ctx1 / cap1 update rules
 * are exactly those of trace::computeTruthProfile(), so measured
 * counts are comparable to analytic ground truth.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "trace/instruction.hh"

namespace lvpsim
{
namespace qa
{

/** Per-family ideal hit counts over one trace. */
struct OracleFamilyCounts
{
    std::uint64_t loads = 0; ///< predictable loads examined
    std::uint64_t lvp = 0;
    std::uint64_t sap = 0;
    std::uint64_t ctx1 = 0;
    std::uint64_t ctx8 = 0;
    std::uint64_t cap1 = 0;
    /** Loads at least one family predicted correctly. */
    std::uint64_t unionHits = 0;

    double
    unionFrac() const
    {
        return loads == 0 ? 0.0 : double(unionHits) / double(loads);
    }
};

/** Replay the ideal family models over @p ops. */
OracleFamilyCounts
measureIdealFamilies(const std::vector<trace::MicroOp> &ops);

} // namespace qa
} // namespace lvpsim
