/**
 * @file
 * Differential pipeline harness.
 *
 * Runs the same trace through three pipelines - no-VP baseline,
 * composite value predictor, and a perfect oracle predictor - and
 * cross-checks everything the execute-at-fetch model guarantees:
 *
 *  - the architectural commit stream is bit-identical across all
 *    three runs (hash + per-record check against the trace), so a
 *    squash/refetch bug that skips, duplicates, or reorders a commit
 *    is caught regardless of which predictor provoked the flush;
 *  - every commit stream is exactly the trace, in order;
 *  - predictor bookkeeping drains: no pending snapshots after a run,
 *    every confidence counter within its FPC range;
 *  - the oracle's probe-order assumption held (no mismatched probes).
 *
 * Speedup ordering (oracle >= composite >= baseline) is reported via
 * the per-run IPCs; tests assert it with an explicit tolerance since
 * a flush-free run is faster, not *provably* faster, cycle-by-cycle.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/composite.hh"
#include "pipeline/core_config.hh"
#include "pipeline/sim_stats.hh"
#include "trace/instruction.hh"

namespace lvpsim
{
namespace qa
{

/** One pipeline's half of the comparison. */
struct PipelineRun
{
    std::string predictor;  ///< "none", "composite", "oracle"
    pipe::SimStats stats;
    std::uint64_t commits = 0;
    std::uint64_t commitHash = 0; ///< FNV-1a over all commit records
    bool commitsMatchTrace = true; ///< stream == trace, in order

    double ipc() const { return stats.ipc(); }
};

/** The full three-way comparison for one trace. */
struct DifferentialResult
{
    PipelineRun base;      ///< no-VP
    PipelineRun composite; ///< composite predictor under test
    PipelineRun oracle;    ///< perfect predictor upper bound

    bool commitStreamsIdentical = false;
    bool snapshotsDrained = false;   ///< composite kept no leftovers
    bool confidencesInRange = false; ///< every FPC counter <= max
    std::uint64_t oracleMismatches = 0;

    /** All structural checks passed (IPC ordering not included). */
    bool ok() const;
    /** Human-readable list of everything that failed; "" when ok. */
    std::string failureReport() const;
};

/** FNV-1a (64-bit) over an arbitrary byte range; hash composition
 *  seed for incremental use. */
constexpr std::uint64_t fnv1aInit = 0xcbf29ce484222325ull;
std::uint64_t fnv1a(std::uint64_t h, const void *data, std::size_t n);

/**
 * Run @p code through one pipeline with @p vp (nullptr = no-VP),
 * recording the commit-stream hash and trace conformance.
 */
PipelineRun runPipeline(const pipe::CoreConfig &ccfg,
                        const std::vector<trace::MicroOp> &code,
                        pipe::LoadValuePredictor *vp,
                        const char *label,
                        std::uint64_t max_instrs = 0);

/**
 * The full differential: {no-VP, composite(@p vcfg), oracle} over
 * @p code with core config @p ccfg.
 */
DifferentialResult runDifferential(const pipe::CoreConfig &ccfg,
                                   const vp::CompositeConfig &vcfg,
                                   const std::vector<trace::MicroOp> &code,
                                   std::uint64_t max_instrs = 0);

} // namespace qa
} // namespace lvpsim

