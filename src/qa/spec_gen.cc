/**
 * @file
 * KernelSpec generation: random draws shaped to satisfy the DSL's
 * validation rules by construction (stride working sets sized from
 * the phase's iteration count, chase laps aligned to the cycle
 * length, fill widths compatible with the element size), so every
 * generated spec is usable without rejection sampling.
 */

#include "qa/spec_gen.hh"

#include <algorithm>

#include "common/logging.hh"

namespace lvpsim
{
namespace qa
{

using trace::ChaseOrder;
using trace::FillKind;
using trace::GlueOp;
using trace::KernelSpec;
using trace::MixStrategy;
using trace::PatternKind;
using trace::PhaseSpec;
using trace::StreamSpec;

namespace
{

GlueOp
genGlue(Gen &g)
{
    switch (g.below(4)) {
      case 0:
        return GlueOp::Add;
      case 1:
        return GlueOp::Xor;
      case 2:
        return GlueOp::Fadd;
      default:
        return GlueOp::None;
    }
}

void
genFill(Gen &g, StreamSpec &s)
{
    if (s.esz == 8 && g.chance(0.3)) {
        s.fill = FillKind::Rng;
    } else {
        s.fill = FillKind::Seq;
        s.fillBase = g.below(1u << 16);
        s.fillStep = 1 + g.below(s.esz == 4 ? 255 : 4096);
    }
}

} // anonymous namespace

KernelSpec
genKernelSpec(Gen &g, const SpecGenConfig &cfg)
{
    KernelSpec spec;
    const unsigned nPhases = 1 + unsigned(g.below(cfg.maxPhases));
    for (unsigned pi = 0; pi < nPhases; ++pi) {
        PhaseSpec ph;
        const unsigned nStreams = 1 + unsigned(g.below(cfg.maxStreams));

        // Draw kinds first; pointer-walk constraints (stride needs
        // iters*weight <= wset, chase needs iters % wset == 0) are
        // mutually awkward, so a phase gets stride xor chase.
        std::vector<PatternKind> kinds;
        bool haveChase = false, haveStride = false;
        for (unsigned si = 0; si < nStreams; ++si) {
            std::vector<PatternKind> pool{PatternKind::Const,
                                          PatternKind::Ctx};
            if (cfg.allowPick)
                pool.push_back(PatternKind::Pick);
            if (!haveChase)
                pool.push_back(PatternKind::Stride);
            if (cfg.allowChase && !haveChase && !haveStride)
                pool.push_back(PatternKind::Chase);
            const PatternKind k = g.pick(pool);
            haveChase |= k == PatternKind::Chase;
            haveStride |= k == PatternKind::Stride;
            kinds.push_back(k);
        }

        const bool lastPhase = pi + 1 == nPhases;
        std::uint64_t chaseW = 0;
        if (haveChase)
            chaseW = 4 + g.below(61); // [4, 64] nodes

        if (lastPhase && cfg.allowInfinite && !haveStride &&
            g.chance(0.3)) {
            ph.iters = 0;
        } else {
            ph.iters = g.range(4, 512);
            if (haveChase) // aligned laps over the cycle
                ph.iters = chaseW * g.range(1, 4);
        }
        ph.mix = static_cast<MixStrategy>(g.below(3));
        if (g.chance(0.1)) // mostly auto bases; sometimes explicit
            ph.base = 0x10000000 + Addr(pi) * 0x08000000;

        for (unsigned si = 0; si < nStreams; ++si) {
            StreamSpec s = trace::defaultStream(kinds[si]);
            s.glue = genGlue(g);
            s.weight = 1 + unsigned(g.below(4));
            switch (s.kind) {
              case PatternKind::Const:
                s.value = g.interestingValue();
                if (g.chance(0.25))
                    s.esz = 4;
                break;
              case PatternKind::Ctx:
                s.period = 2 + unsigned(g.below(255));
                if (g.chance(0.25))
                    s.esz = 4;
                genFill(g, s);
                break;
              case PatternKind::Pick:
                s.entries = 2 + unsigned(g.below(63));
                if (g.chance(0.25))
                    s.esz = 4;
                genFill(g, s);
                break;
              case PatternKind::Stride: {
                if (ph.mix == MixStrategy::Random)
                    s.weight = 1; // reps share the pointer; see
                                  // validateKernelSpec()
                if (g.chance(0.25))
                    s.esz = 4;
                s.step = std::int64_t(s.esz) *
                         std::int64_t(1 + g.below(4));
                const std::uint64_t need =
                    ph.iters * std::uint64_t(s.weight);
                s.wset = std::max<std::uint64_t>(
                    2, need + g.below(need + 2));
                genFill(g, s);
                break;
              }
              case PatternKind::Chase:
                s.weight = 1;
                s.wset = chaseW;
                s.step = 24 + std::int64_t(g.below(105)); // [24,128]
                s.order = g.chance(0.5) ? ChaseOrder::Shuffle
                                        : ChaseOrder::Zigzag;
                break;
            }
            ph.streams.push_back(s);
        }
        spec.phases.push_back(ph);
    }

    const std::string why = trace::validateKernelSpec(spec);
    lvp_assert(why.empty(), "genKernelSpec produced invalid spec: %s",
               why.c_str());
    return spec;
}

} // namespace qa
} // namespace lvpsim
