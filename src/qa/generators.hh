/**
 * @file
 * Seeded input generators for property-based tests.
 *
 * Everything derives from a single 64-bit seed through the same
 * Xoshiro256** generator the simulator uses, so a failing property
 * is reproducible from its seed alone. Generators produce inputs
 * that are *valid by construction* (register ids in range, memory
 * sizes in {1,2,4,8}, branch classes with targets) but otherwise
 * adversarial: extreme values, aliased PCs, mixed address patterns.
 *
 * See docs/testing.md for the workflow.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/random.hh"
#include "common/types.hh"
#include "pipeline/core_config.hh"
#include "trace/instruction.hh"

namespace lvpsim
{
namespace qa
{

/**
 * The generator handle passed to property bodies: a seeded rng plus
 * convenience draws used by the input generators below.
 */
class Gen
{
  public:
    explicit Gen(std::uint64_t seed) : rngState(seed), seedVal(seed) {}

    std::uint64_t seed() const { return seedVal; }
    Xoshiro256 &rng() { return rngState; }

    std::uint64_t u64() { return rngState.next(); }
    std::uint64_t below(std::uint64_t bound) { return rngState.below(bound); }
    std::uint64_t range(std::uint64_t lo, std::uint64_t hi)
    {
        return rngState.range(lo, hi);
    }
    bool chance(double p) { return rngState.bernoulli(p); }

    /** Uniform pick from a non-empty vector. */
    template <typename T>
    const T &
    pick(const std::vector<T> &xs)
    {
        return xs[below(xs.size())];
    }

    /**
     * A value drawn from an "interesting" distribution: small
     * integers, powers of two and their neighbours, all-ones, and
     * fully random words - the classic fuzz corners.
     */
    std::uint64_t interestingValue();

  private:
    Xoshiro256 rngState;
    std::uint64_t seedVal;
};

/** Knobs for genTrace(); the defaults cover the pipeline broadly. */
struct TraceGenConfig
{
    std::size_t minOps = 64;
    std::size_t maxOps = 4096;

    /// Static code footprint: dynamic ops draw their PC from this
    /// many distinct static instructions (aliasing pressure).
    unsigned staticPcs = 48;

    /// Per-op class weights (normalized internally).
    double loadWeight = 0.30;
    double storeWeight = 0.12;
    double branchWeight = 0.15;

    /// Fraction of loads marked atomic/exclusive (never predicted).
    double exclusiveFrac = 0.02;
};

/**
 * Generate a structurally valid dynamic trace: every register id is
 * an architectural register, memory ops carry a size in {1,2,4,8}
 * and an address drawn from per-PC behaviours (constant, strided,
 * random-in-region, repeating period), load values follow their own
 * per-PC behaviours so all four predictor patterns occur, and
 * control ops are taken/not-taken with plausible targets.
 */
std::vector<trace::MicroOp> genTrace(Gen &g,
                                     const TraceGenConfig &cfg = {});

/**
 * A standalone address stream with a named mixture of behaviours
 * (sequential, strided, pointer-chase-like, uniform random) - used
 * to fuzz predictor tables directly, without a full trace.
 */
std::vector<Addr> genAddressStream(Gen &g, std::size_t n);

/** A bounded, always-runnable core configuration variation. */
pipe::CoreConfig genCoreConfig(Gen &g);

} // namespace qa
} // namespace lvpsim

