/**
 * @file
 * Tiny property-based test runner.
 *
 * A property is a predicate over generated inputs. forAllSeeds()
 * derives one Gen per case from a base seed, runs the predicate, and
 * reports the first failing seed - which is all that is needed to
 * reproduce the failure, since every generator is deterministic in
 * its seed. checkTraceProperty() additionally shrinks the failing
 * trace to a minimal counterexample (see qa/shrink.hh).
 *
 * This is deliberately not a framework: it layers under gtest (or
 * any other harness) by returning a result struct the caller
 * asserts on.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "qa/generators.hh"
#include "qa/shrink.hh"
#include "trace/instruction.hh"

namespace lvpsim
{
namespace qa
{

/** Outcome of a forAllSeeds() run. */
struct PropertyResult
{
    bool ok = true;
    std::uint64_t casesRun = 0;
    std::uint64_t failingSeed = 0; ///< valid only when !ok
    std::string message;           ///< what the property reported

    /** gtest-friendly description ("ok" or seed + message). */
    std::string describe() const;
};

/** Outcome of checkTraceProperty(): adds the shrunk trace. */
struct TracePropertyResult
{
    PropertyResult base;
    std::vector<trace::MicroOp> minimal; ///< shrunk counterexample
    ShrinkStats shrink;

    bool ok() const { return base.ok; }
    std::string describe() const;
};

/**
 * Run @p body for @p cases seeds derived from @p base_seed. The body
 * returns true when the property holds; it may also throw - the
 * exception message is captured and the case counts as a failure.
 * Stops at the first failure.
 */
PropertyResult
forAllSeeds(std::uint64_t cases, std::uint64_t base_seed,
            const std::function<bool(Gen &)> &body);

/**
 * Specialization for trace-valued properties: generate a trace per
 * seed with @p tcfg, test @p holds, and on failure shrink the trace
 * to a minimal counterexample before returning.
 */
TracePropertyResult
checkTraceProperty(std::uint64_t cases, std::uint64_t base_seed,
                   const TraceProperty &holds,
                   const TraceGenConfig &tcfg = {});

/** The per-case seed forAllSeeds derives: SplitMix64 of base+index. */
std::uint64_t caseSeed(std::uint64_t base_seed, std::uint64_t index);

} // namespace qa
} // namespace lvpsim

