#include "qa/property.hh"

#include <exception>
#include <sstream>

#include "common/random.hh"

namespace lvpsim
{
namespace qa
{

std::uint64_t
caseSeed(std::uint64_t base_seed, std::uint64_t index)
{
    // SplitMix64 so neighbouring indices give unrelated seeds, and
    // seed 0 does not degenerate.
    SplitMix64 sm(base_seed ^ (index * 0x9e3779b97f4a7c15ull));
    return sm.next();
}

std::string
PropertyResult::describe() const
{
    if (ok)
        return "ok (" + std::to_string(casesRun) + " cases)";
    std::ostringstream os;
    os << "property failed at seed 0x" << std::hex << failingSeed
       << std::dec << " (case " << casesRun << ")";
    if (!message.empty())
        os << ": " << message;
    return os.str();
}

std::string
TracePropertyResult::describe() const
{
    if (ok())
        return base.describe();
    std::ostringstream os;
    os << base.describe() << "; shrunk " << shrink.originalOps
       << " -> " << shrink.finalOps << " ops ("
       << shrink.candidatesTried << " candidates)";
    return os.str();
}

PropertyResult
forAllSeeds(std::uint64_t cases, std::uint64_t base_seed,
            const std::function<bool(Gen &)> &body)
{
    PropertyResult r;
    for (std::uint64_t i = 0; i < cases; ++i) {
        const std::uint64_t seed = caseSeed(base_seed, i);
        Gen g(seed);
        bool holds = false;
        try {
            holds = body(g);
        } catch (const std::exception &e) {
            r.message = e.what();
        }
        ++r.casesRun;
        if (!holds) {
            r.ok = false;
            r.failingSeed = seed;
            return r;
        }
    }
    return r;
}

TracePropertyResult
checkTraceProperty(std::uint64_t cases, std::uint64_t base_seed,
                   const TraceProperty &holds,
                   const TraceGenConfig &tcfg)
{
    // Exceptions inside the property count as failures during both
    // search and shrinking, so shrinking can minimize crashes too.
    auto safe_holds = [&](const std::vector<trace::MicroOp> &t,
                          std::string *msg) {
        try {
            return holds(t);
        } catch (const std::exception &e) {
            if (msg)
                *msg = e.what();
            return false;
        }
    };

    TracePropertyResult r;
    for (std::uint64_t i = 0; i < cases; ++i) {
        const std::uint64_t seed = caseSeed(base_seed, i);
        Gen g(seed);
        auto t = genTrace(g, tcfg);
        ++r.base.casesRun;
        if (!safe_holds(t, &r.base.message)) {
            r.base.ok = false;
            r.base.failingSeed = seed;
            r.minimal = shrinkTrace(
                std::move(t),
                [&](const std::vector<trace::MicroOp> &c) {
                    return safe_holds(c, nullptr);
                },
                &r.shrink);
            return r;
        }
    }
    return r;
}

} // namespace qa
} // namespace lvpsim
