#include "qa/generators.hh"

#include <algorithm>

namespace lvpsim
{
namespace qa
{

using trace::MicroOp;
using trace::OpClass;

std::uint64_t
Gen::interestingValue()
{
    switch (below(6)) {
      case 0: return below(16);                    // small
      case 1: return ~std::uint64_t(0);            // all ones
      case 2: {                                    // power of two
        const unsigned k = unsigned(below(64));
        return std::uint64_t(1) << k;
      }
      case 3: {                                    // 2^k - 1 / 2^k + 1
        const unsigned k = unsigned(below(63)) + 1;
        const std::uint64_t p = std::uint64_t(1) << k;
        return chance(0.5) ? p - 1 : p + 1;
      }
      case 4: return std::uint64_t(-std::int64_t(below(16)));
      default: return u64();                       // random word
    }
}

namespace
{

/** Per-static-PC behaviour for addresses and values. */
struct PcPlan
{
    Addr pc = 0;
    OpClass cls = OpClass::IntAlu;
    RegId dst = invalidReg;
    std::array<RegId, 3> src{invalidReg, invalidReg, invalidReg};

    // Memory behaviour (Load/Store).
    unsigned addrMode = 0;   ///< 0 const, 1 stride, 2 random, 3 period
    Addr baseAddr = 0;
    std::int64_t stride = 0;
    unsigned period = 1;
    std::uint8_t memSize = 8;
    bool exclusive = false;

    // Value behaviour (Load): 0 const, 1 stride, 2 random, 3 period.
    unsigned valueMode = 0;
    Value baseValue = 0;
    std::int64_t valueStride = 0;

    // Control behaviour (Branch): taken probability.
    double takenProb = 0.5;
    Addr target = 0;

    // Dynamic state while emitting.
    std::uint64_t occurrences = 0;
};

OpClass
drawClass(Gen &g, const TraceGenConfig &cfg)
{
    const double total = 1.0;
    double x = double(g.below(1u << 20)) / double(1u << 20) * total;
    if ((x -= cfg.loadWeight) < 0)
        return OpClass::Load;
    if ((x -= cfg.storeWeight) < 0)
        return OpClass::Store;
    if ((x -= cfg.branchWeight) < 0) {
        // Mostly conditional branches; sprinkle the other control
        // classes so RAS/ITTAGE paths run too. Calls and returns are
        // emitted unpaired - the RAS tolerates (and the pipeline
        // must tolerate) arbitrary call/return sequences.
        switch (g.below(8)) {
          case 0: return OpClass::Call;
          case 1: return OpClass::Ret;
          case 2: return OpClass::IndirBr;
          default: return OpClass::Branch;
        }
    }
    switch (g.below(10)) {
      case 0: return OpClass::IntMul;
      case 1: return OpClass::IntDiv;
      case 2: return OpClass::FpAlu;
      case 3: return OpClass::Nop;
      case 4: return OpClass::Barrier;
      default: return OpClass::IntAlu;
    }
}

PcPlan
makePlan(Gen &g, const TraceGenConfig &cfg, unsigned idx)
{
    PcPlan p;
    p.cls = drawClass(g, cfg);
    p.pc = 0x400000 + Addr(idx) * 4;
    // Occasionally alias two static slots onto one PC to stress
    // per-PC structures (inflight counts, predictor tags).
    if (idx > 0 && g.chance(0.05))
        p.pc = 0x400000 + g.below(idx) * 4;

    if (p.cls != OpClass::Store && p.cls != OpClass::Barrier &&
        p.cls != OpClass::Nop && !trace::isControl(p.cls))
        p.dst = RegId(g.below(numArchRegs));
    for (auto &s : p.src)
        if (g.chance(0.55))
            s = RegId(g.below(numArchRegs));

    if (p.cls == OpClass::Load || p.cls == OpClass::Store) {
        static const std::uint8_t sizes[4] = {1, 2, 4, 8};
        p.memSize = sizes[g.below(4)];
        p.addrMode = unsigned(g.below(4));
        // Addresses within a few disjoint 1 MiB regions, aligned to
        // the access size so fuzzed traces look like compiler output.
        p.baseAddr = (0x10000000 + g.below(8) * 0x100000 +
                      g.below(0x100000)) &
                     ~Addr(p.memSize - 1);
        p.stride = std::int64_t(g.range(0, 64)) - 32;
        p.stride *= p.memSize;
        p.period = unsigned(g.range(1, 8));
        p.exclusive =
            p.cls == OpClass::Load && g.chance(cfg.exclusiveFrac);

        p.valueMode = unsigned(g.below(4));
        p.baseValue = g.interestingValue();
        p.valueStride = std::int64_t(g.range(0, 8)) - 4;
    } else if (trace::isControl(p.cls)) {
        p.takenProb = g.chance(0.3) ? (g.chance(0.5) ? 0.0 : 1.0)
                                    : g.rng().uniform();
        p.target = 0x400000 + g.below(4096) * 4;
    }
    return p;
}

Addr
nextAddr(Gen &g, PcPlan &p)
{
    switch (p.addrMode) {
      case 0: return p.baseAddr;
      case 1:
        return Addr(std::int64_t(p.baseAddr) +
                    std::int64_t(p.occurrences) * p.stride) &
               ~Addr(p.memSize - 1);
      case 2:
        return (p.baseAddr + g.below(0x40000) * p.memSize) &
               ~Addr(p.memSize - 1);
      default:
        return p.baseAddr +
               Addr(p.occurrences % p.period) * p.memSize;
    }
}

Value
nextValue(Gen &g, PcPlan &p)
{
    switch (p.valueMode) {
      case 0: return p.baseValue;
      case 1:
        return Value(std::int64_t(p.baseValue) +
                     std::int64_t(p.occurrences) * p.valueStride);
      case 2: return g.interestingValue();
      default: return p.baseValue + (p.occurrences % p.period);
    }
}

} // anonymous namespace

std::vector<MicroOp>
genTrace(Gen &g, const TraceGenConfig &cfg)
{
    const std::size_t n = g.range(cfg.minOps, cfg.maxOps);
    std::vector<PcPlan> plans;
    plans.reserve(cfg.staticPcs);
    for (unsigned i = 0; i < cfg.staticPcs; ++i)
        plans.push_back(makePlan(g, cfg, i));

    std::vector<MicroOp> ops;
    ops.reserve(n);
    while (ops.size() < n) {
        PcPlan &p = plans[g.below(plans.size())];
        MicroOp op;
        op.pc = p.pc;
        op.cls = p.cls;
        op.dst = p.dst;
        op.src = p.src;
        if (op.isLoad() || op.isStore()) {
            op.effAddr = nextAddr(g, p);
            op.memSize = p.memSize;
            op.memValue = nextValue(g, p);
            op.exclusiveMem = p.exclusive;
        } else if (op.isBranch()) {
            op.taken = g.chance(p.takenProb) ||
                       p.cls != OpClass::Branch;
            op.target = op.taken ? p.target : op.pc + 4;
        }
        ++p.occurrences;
        ops.push_back(op);
    }
    return ops;
}

std::vector<Addr>
genAddressStream(Gen &g, std::size_t n)
{
    std::vector<Addr> out;
    out.reserve(n);
    Addr cursor = 0x20000000 + g.below(0x1000000);
    const std::int64_t stride = (std::int64_t(g.range(0, 64)) - 32) * 8;
    while (out.size() < n) {
        switch (g.below(4)) {
          case 0: // sequential burst
            for (unsigned i = 0; i < 8 && out.size() < n; ++i)
                out.push_back(cursor += 8);
            break;
          case 1: // strided burst
            for (unsigned i = 0; i < 8 && out.size() < n; ++i)
                out.push_back(cursor += stride);
            break;
          case 2: // pointer-chase-like jump
            cursor = 0x20000000 + (cursor * 0x9e3779b97f4a7c15ull >>
                                   40);
            out.push_back(cursor);
            break;
          default: // uniform random
            out.push_back(0x20000000 + g.below(0x1000000));
            break;
        }
    }
    return out;
}

pipe::CoreConfig
genCoreConfig(Gen &g)
{
    pipe::CoreConfig c;
    // Bounded variations around Table III: small enough to stress
    // queue-full paths, never degenerate (every width >= 1, LS lanes
    // <= issue width, queues sized so dispatch can always progress).
    c.fetchWidth = unsigned(g.range(1, 6));
    c.lsLanes = unsigned(g.range(1, 3));
    c.issueWidth = unsigned(g.range(c.lsLanes + 1, 10));
    c.retireWidth = unsigned(g.range(1, 10));
    c.robSize = unsigned(g.range(16, 224));
    c.iqSize = unsigned(g.range(8, 97));
    c.ldqSize = unsigned(g.range(4, 72));
    c.stqSize = unsigned(g.range(4, 56));
    c.paqSize = unsigned(g.range(1, 16));
    c.fetchToExecute = Cycle(g.range(2, 13));
    c.seed = g.u64();
    return c;
}

} // namespace qa
} // namespace lvpsim
