/**
 * @file
 * Failure-case shrinking for trace-valued properties.
 *
 * When a fuzzed trace falsifies a property, the raw counterexample
 * is typically thousands of ops. shrinkTrace() greedily minimizes
 * it: repeatedly delete chunks (halves, then quarters, down to
 * single ops) and simplify surviving ops (drop sources, zero
 * values), keeping any candidate that still fails. The result is a
 * locally minimal trace - removing any single remaining op (at the
 * granularities tried) makes the property pass.
 *
 * Shrinking is deterministic: the same failing trace and property
 * always shrink to the same counterexample.
 */

#pragma once

#include <functional>
#include <vector>

#include "trace/instruction.hh"

namespace lvpsim
{
namespace qa
{

/** Returns true when the property HOLDS for the given trace. */
using TraceProperty =
    std::function<bool(const std::vector<trace::MicroOp> &)>;

/** Diagnostics from a shrink run. */
struct ShrinkStats
{
    std::size_t originalOps = 0;
    std::size_t finalOps = 0;
    std::size_t candidatesTried = 0;
};

/**
 * Minimize @p failing (a trace for which @p holds returns false).
 * Every returned trace still falsifies the property. @p max_rounds
 * bounds the outer fixpoint loop; the default converges for any
 * realistic trace.
 */
std::vector<trace::MicroOp>
shrinkTrace(std::vector<trace::MicroOp> failing,
            const TraceProperty &holds, ShrinkStats *stats = nullptr,
            unsigned max_rounds = 64);

} // namespace qa
} // namespace lvpsim

