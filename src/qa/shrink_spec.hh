/**
 * @file
 * Failure-case shrinking for structured inputs.
 *
 * shrinkTrace() (shrink.hh) only knows how to chunk-delete event
 * vectors; a falsified *workload-space* property needs its
 * counterexample minimized over spec structure instead: drop phases,
 * drop streams, then shrink fields toward their defaults. The
 * Shrinkable trait supplies typed candidate lists and
 * shrinkStructured() runs the same greedy keep-if-still-failing loop
 * over them, so any structured input type can opt in by specializing
 * Shrinkable<T>.
 *
 * Shrinkable<trace::KernelSpec> is provided here: candidates are
 * ordered structure-first (phase chunks, stream chunks) and every
 * candidate is pre-filtered through validateKernelSpec(), so the
 * shrinker never proposes a spec the generator could not have
 * produced. A failing multi-phase, multi-stream spec typically lands
 * on a single-phase, single-stream witness
 * (tests/test_spec_shrink.cc).
 */

#pragma once

#include <functional>
#include <vector>

#include "qa/shrink.hh"
#include "trace/kernel_spec.hh"

namespace lvpsim
{
namespace qa
{

/**
 * Trait for structure-aware shrinking: candidates() lists strictly
 * "smaller" variants of @p value, most aggressive first; size()
 * reports a monotone complexity measure for ShrinkStats.
 */
template <typename T>
struct Shrinkable; // specialize per input type

template <>
struct Shrinkable<trace::KernelSpec>
{
    static std::vector<trace::KernelSpec>
    candidates(const trace::KernelSpec &spec);

    /** Phases plus total streams plus field distance from defaults. */
    static std::size_t size(const trace::KernelSpec &spec);
};

/**
 * Greedily minimize @p failing (for which @p holds returns false)
 * over Shrinkable<T>::candidates(). Returns an input that still
 * falsifies the property and admits no smaller failing candidate.
 */
template <typename T>
T
shrinkStructured(T failing,
                 const std::function<bool(const T &)> &holds,
                 ShrinkStats *stats = nullptr,
                 unsigned max_rounds = 64)
{
    ShrinkStats local;
    local.originalOps = Shrinkable<T>::size(failing);
    for (unsigned round = 0; round < max_rounds; ++round) {
        bool progressed = false;
        for (const T &cand : Shrinkable<T>::candidates(failing)) {
            ++local.candidatesTried;
            if (!holds(cand)) {
                failing = cand;
                progressed = true;
                break; // restart from the new, smaller witness
            }
        }
        if (!progressed)
            break;
    }
    local.finalOps = Shrinkable<T>::size(failing);
    if (stats)
        *stats = local;
    return failing;
}

} // namespace qa
} // namespace lvpsim
