#include "qa/differential.hh"

#include <cstring>
#include <sstream>

#include "core/oracle_vp.hh"
#include "pipeline/core.hh"

namespace lvpsim
{
namespace qa
{

std::uint64_t
fnv1a(std::uint64_t h, const void *data, std::size_t n)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

namespace
{

std::uint64_t
hashField(std::uint64_t h, std::uint64_t v)
{
    return fnv1a(h, &v, sizeof(v));
}

} // anonymous namespace

PipelineRun
runPipeline(const pipe::CoreConfig &ccfg,
            const std::vector<trace::MicroOp> &code,
            pipe::LoadValuePredictor *vp, const char *label,
            std::uint64_t max_instrs)
{
    PipelineRun run;
    run.predictor = label;

    pipe::Core core(ccfg, code, vp);
    std::uint64_t expectIdx = 0;
    core.setCommitHook([&](const pipe::CommitRecord &rec) {
        ++run.commits;
        std::uint64_t h = run.commitHash ? run.commitHash : fnv1aInit;
        h = hashField(h, rec.traceIdx);
        h = hashField(h, rec.pc);
        h = hashField(h, std::uint64_t(rec.cls));
        h = hashField(h, rec.effAddr);
        h = hashField(h, rec.memSize);
        h = hashField(h, rec.value);
        run.commitHash = h;

        // The stream must be the trace itself, in order.
        if (rec.traceIdx != expectIdx++) {
            run.commitsMatchTrace = false;
        } else if (rec.traceIdx < code.size()) {
            const trace::MicroOp &op = code[rec.traceIdx];
            const bool is_mem = op.isLoad() || op.isStore();
            if (rec.pc != op.pc || rec.cls != op.cls ||
                (is_mem && (rec.effAddr != op.effAddr ||
                            rec.memSize != op.memSize ||
                            rec.value != op.memValue)))
                run.commitsMatchTrace = false;
        } else {
            run.commitsMatchTrace = false;
        }
    });
    run.stats = core.run(max_instrs);
    if (run.commits != run.stats.instructions)
        run.commitsMatchTrace = false;
    return run;
}

bool
DifferentialResult::ok() const
{
    return commitStreamsIdentical && snapshotsDrained &&
           confidencesInRange && oracleMismatches == 0 &&
           base.commitsMatchTrace && composite.commitsMatchTrace &&
           oracle.commitsMatchTrace;
}

std::string
DifferentialResult::failureReport() const
{
    if (ok())
        return "";
    std::ostringstream os;
    auto note = [&](bool bad, const char *what) {
        if (bad)
            os << what << "; ";
    };
    note(!commitStreamsIdentical,
         "commit streams differ across pipelines");
    note(!base.commitsMatchTrace, "no-VP commits diverge from trace");
    note(!composite.commitsMatchTrace,
         "composite commits diverge from trace");
    note(!oracle.commitsMatchTrace,
         "oracle commits diverge from trace");
    note(!snapshotsDrained, "composite left pending snapshots");
    note(!confidencesInRange, "confidence counter out of FPC range");
    if (oracleMismatches)
        os << oracleMismatches << " oracle probe mismatches; ";
    os << "hashes: base=0x" << std::hex << base.commitHash
       << " composite=0x" << composite.commitHash << " oracle=0x"
       << oracle.commitHash << std::dec << " commits: "
       << base.commits << "/" << composite.commits << "/"
       << oracle.commits;
    return os.str();
}

DifferentialResult
runDifferential(const pipe::CoreConfig &ccfg,
                const vp::CompositeConfig &vcfg,
                const std::vector<trace::MicroOp> &code,
                std::uint64_t max_instrs)
{
    DifferentialResult r;

    r.base = runPipeline(ccfg, code, nullptr, "none", max_instrs);

    vp::CompositePredictor comp(vcfg);
    r.composite =
        runPipeline(ccfg, code, &comp, "composite", max_instrs);
    r.snapshotsDrained = comp.pendingSnapshots() == 0;
    r.confidencesInRange = true;
    comp.visitConfidences([&](unsigned value, unsigned max_level) {
        if (value > max_level)
            r.confidencesInRange = false;
    });

    vp::OracleVp oracle(code);
    r.oracle = runPipeline(ccfg, code, &oracle, "oracle", max_instrs);
    r.oracleMismatches = oracle.mismatches();

    r.commitStreamsIdentical =
        r.base.commitHash == r.composite.commitHash &&
        r.base.commitHash == r.oracle.commitHash &&
        r.base.commits == r.composite.commits &&
        r.base.commits == r.oracle.commits;
    return r;
}

} // namespace qa
} // namespace lvpsim
