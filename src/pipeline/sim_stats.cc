#include "pipeline/sim_stats.hh"

#include <iomanip>

#include "pipeline/lvp_interface.hh"

namespace lvpsim
{
namespace pipe
{

void
SimStats::dump(std::ostream &os) const
{
    auto row = [&os](const char *name, std::uint64_t v) {
        os << "  " << std::left << std::setw(26) << name << std::right
           << std::setw(14) << v << "\n";
    };
    os << std::fixed << std::setprecision(4);
    row("cycles", cycles);
    row("instructions", instructions);
    os << "  " << std::left << std::setw(26) << "ipc" << std::right
       << std::setw(14) << ipc() << "\n";
    row("loads", loads);
    row("eligible_loads", eligibleLoads);
    row("stores", stores);
    row("branches", branches);
    row("branch_mispredicts", branchMispredicts);
    row("predictions_made", predictionsMade);
    row("predictions_used", predictionsUsed);
    row("predictions_correct", predictionsCorrect);
    row("predictions_wrong", predictionsWrong);
    os << "  " << std::left << std::setw(26) << "coverage"
       << std::right << std::setw(14) << coverage() << "\n";
    os << "  " << std::left << std::setw(26) << "accuracy"
       << std::right << std::setw(14) << accuracy() << "\n";
    row("paq_probes", paqProbes);
    row("paq_misses", paqMisses);
    row("paq_drops_full", paqDropsFull);
    row("paq_conflict_drops", paqConflictDrops);
    row("vp_flushes", vpFlushes);
    row("mem_order_flushes", memOrderFlushes);
    row("squashed_ops", squashedOps);
    row("l1d_misses", l1dMisses);
    row("l2_misses", l2Misses);
    for (std::size_t c = 0; c < usedByComponent.size(); ++c) {
        if (usedByComponent[c] == 0)
            continue;
        os << "  used_by[" << componentName(ComponentId(c))
           << "]" << std::setw(24) << usedByComponent[c]
           << "  wrong " << wrongByComponent[c] << "\n";
    }
}

} // namespace pipe
} // namespace lvpsim
