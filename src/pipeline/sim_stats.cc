#include "pipeline/sim_stats.hh"

#include <iomanip>
#include <string>
#include <vector>

#include "core/lvp_interface.hh"

namespace lvpsim
{
namespace pipe
{

void
SimStats::dump(std::ostream &os) const
{
    auto row = [&os](const char *name, std::uint64_t v) {
        os << "  " << std::left << std::setw(26) << name << std::right
           << std::setw(14) << v << "\n";
    };
    os << std::fixed << std::setprecision(4);
    row("cycles", cycles);
    row("instructions", instructions);
    os << "  " << std::left << std::setw(26) << "ipc" << std::right
       << std::setw(14) << ipc() << "\n";
    row("loads", loads);
    row("eligible_loads", eligibleLoads);
    row("stores", stores);
    row("branches", branches);
    row("branch_mispredicts", branchMispredicts);
    row("predictions_made", predictionsMade);
    row("predictions_used", predictionsUsed);
    row("predictions_correct", predictionsCorrect);
    row("predictions_wrong", predictionsWrong);
    os << "  " << std::left << std::setw(26) << "coverage"
       << std::right << std::setw(14) << coverage() << "\n";
    os << "  " << std::left << std::setw(26) << "accuracy"
       << std::right << std::setw(14) << accuracy() << "\n";
    row("paq_probes", paqProbes);
    row("paq_misses", paqMisses);
    row("paq_drops_full", paqDropsFull);
    row("paq_conflict_drops", paqConflictDrops);
    row("vp_flushes", vpFlushes);
    row("mem_order_flushes", memOrderFlushes);
    row("squashed_ops", squashedOps);
    row("refetch_stash_peak", refetchStashPeak);
    row("vp_snapshots_peak", vpSnapshotsPeak);
    row("l1d_misses", l1dMisses);
    row("l2_misses", l2Misses);
    for (std::size_t c = 0; c < usedByComponent.size(); ++c) {
        if (usedByComponent[c] == 0)
            continue;
        os << "  used_by[" << componentName(ComponentId(c))
           << "]" << std::setw(24) << usedByComponent[c]
           << "  wrong " << wrongByComponent[c] << "\n";
    }
}

namespace
{

/** One row per scalar counter: keeps forEachCounter / setCounter /
 *  statsEqual in lockstep. */
template <typename StatsT, typename Fn>
void
visitScalars(StatsT &s, Fn &&fn)
{
    fn("cycles", s.cycles);
    fn("instructions", s.instructions);
    fn("loads", s.loads);
    fn("eligible_loads", s.eligibleLoads);
    fn("stores", s.stores);
    fn("branches", s.branches);
    fn("branch_mispredicts", s.branchMispredicts);
    fn("predictions_made", s.predictionsMade);
    fn("predictions_used", s.predictionsUsed);
    fn("predictions_correct", s.predictionsCorrect);
    fn("predictions_wrong", s.predictionsWrong);
    fn("paq_probes", s.paqProbes);
    fn("paq_misses", s.paqMisses);
    fn("paq_drops_full", s.paqDropsFull);
    fn("paq_conflict_drops", s.paqConflictDrops);
    fn("vp_flushes", s.vpFlushes);
    fn("mem_order_flushes", s.memOrderFlushes);
    fn("squashed_ops", s.squashedOps);
    fn("refetch_stash_peak", s.refetchStashPeak);
    fn("vp_snapshots_peak", s.vpSnapshotsPeak);
    fn("l1d_misses", s.l1dMisses);
    fn("l2_misses", s.l2Misses);
}

std::string
componentCounterName(const char *prefix, std::size_t i)
{
    return std::string(prefix) + std::to_string(i);
}

} // anonymous namespace

void
forEachCounter(
    const SimStats &s,
    const std::function<void(std::string_view, std::uint64_t)> &fn)
{
    visitScalars(s, [&](std::string_view name, std::uint64_t v) {
        fn(name, v);
    });
    for (std::size_t i = 0; i < s.usedByComponent.size(); ++i)
        fn(componentCounterName("used_by_component_", i),
           s.usedByComponent[i]);
    for (std::size_t i = 0; i < s.wrongByComponent.size(); ++i)
        fn(componentCounterName("wrong_by_component_", i),
           s.wrongByComponent[i]);
}

bool
setCounter(SimStats &s, std::string_view name, std::uint64_t v)
{
    bool found = false;
    visitScalars(s, [&](std::string_view n, std::uint64_t &field) {
        if (n == name) {
            field = v;
            found = true;
        }
    });
    if (found)
        return true;
    for (std::size_t i = 0; i < s.usedByComponent.size(); ++i) {
        if (name == componentCounterName("used_by_component_", i)) {
            s.usedByComponent[i] = v;
            return true;
        }
        if (name == componentCounterName("wrong_by_component_", i)) {
            s.wrongByComponent[i] = v;
            return true;
        }
    }
    return false;
}

bool
statsEqual(const SimStats &a, const SimStats &b)
{
    // Both visits enumerate counters in the same fixed order.
    std::vector<std::uint64_t> av, bv;
    forEachCounter(a, [&](std::string_view, std::uint64_t v) {
        av.push_back(v);
    });
    forEachCounter(b, [&](std::string_view, std::uint64_t v) {
        bv.push_back(v);
    });
    return av == bv;
}

} // namespace pipe
} // namespace lvpsim
