#include "pipeline/core.hh"

#include <algorithm>
#include <limits>

#include "common/check.hh"
#include "common/logging.hh"

namespace lvpsim
{
namespace pipe
{

using trace::MicroOp;
using trace::OpClass;

Core::Core(const CoreConfig &config,
           const std::vector<trace::MicroOp> &trace_code,
           LoadValuePredictor *predictor)
    : cfg(config), code(trace_code),
      vp(predictor ? predictor : &nullVp), memory(cfg.memory),
      tage(cfg.tage, cfg.seed ^ 0x7a9e),
      ittage(cfg.ittage, cfg.seed ^ 0x177a9e), ras(cfg.rasDepth)
{
    rob.configure(cfg.robSize);
    fetchBuf.configure(2 * cfg.fetchWidth);
    paq.configure(cfg.paqSize);
    ldq.configure(cfg.ldqSize);
    stq.configure(cfg.stqSize);
    // Both maps are bounded by the in-flight window (the stash only
    // ever holds trace indices that are still ahead of fetchIdx, see
    // squashYoungerThan); pre-sizing makes them allocation-free.
    inflightLoadPcs.reserve(inflightWindow());
    refetchStash.reserve(inflightWindow());
}

std::size_t
Core::robIndexOfSeq(InstSeqNum seq) const
{
    // ROB seqs are strictly increasing but not contiguous (a squash
    // never rewinds nextSeq), so rob[i].seq >= rob.front().seq + i.
    // Hence seq can only live at index <= seq - front.seq: probe that
    // slot directly (an O(1) hit whenever no squash gap sits below
    // it), else bisect the prefix to its left.
    constexpr std::size_t npos = ~std::size_t(0);
    if (rob.empty())
        return npos;
    const InstSeqNum front_seq = rob.front().seq;
    if (seq < front_seq || seq > rob.back().seq)
        return npos;
    std::size_t hi = std::size_t(seq - front_seq);
    if (hi >= rob.size())
        hi = rob.size() - 1;
    if (rob[hi].seq == seq)
        return hi;
    // rob[hi].seq > seq here, so the match (if any) is in [0, hi).
    std::size_t lo = 0;
    while (lo < hi) {
        const std::size_t mid = lo + (hi - lo) / 2;
        if (rob[mid].seq < seq)
            lo = mid + 1;
        else
            hi = mid;
    }
    return rob[lo].seq == seq ? lo : npos;
}

Core::Inflight *
Core::findBySeq(InstSeqNum seq)
{
    const std::size_t i = robIndexOfSeq(seq);
    return i == ~std::size_t(0) ? nullptr : &rob[i];
}

const Core::Inflight *
Core::findBySeqConst(InstSeqNum seq) const
{
    const std::size_t i = robIndexOfSeq(seq);
    return i == ~std::size_t(0) ? nullptr : &rob[i];
}

bool
Core::depsReady(Inflight &f) const
{
    // On failure, leave a wake-up hint in f.sleepUntil so the issue
    // scan can skip this op without repeating the producer lookups.
    // now+1 means "cannot bound: recheck next cycle".
    Cycle wake = 0;
    for (InstSeqNum d : f.depSeq) {
        if (d == 0)
            continue;
        const Inflight *p = findBySeqConst(d);
        if (!p)
            continue; // producer committed (or squashed): ready
        // A value-predicted load's result is available through the
        // VPE from vpReadyCycle, even before the load executes.
        if (p->vpDelivered && p->vpReadyCycle <= now)
            continue;
        if (p->done && p->doneCycle <= now)
            continue;
        Cycle cand;
        if (p->vpDelivered) {
            cand = p->vpReadyCycle;
            if (p->issued)
                cand = std::min(cand, p->doneCycle);
        } else if (p->paqPending) {
            cand = now + 1; // a PAQ probe may deliver any cycle
        } else if (p->issued) {
            cand = p->doneCycle;
        } else {
            cand = now + 1; // producer not yet issued: unknown
        }
        wake = std::max(wake, cand);
    }
    if (wake == 0)
        return true;
    f.sleepUntil = wake;
    return false;
}

Cycle
Core::execLatency(const Inflight &f)
{
    const MicroOp &op = opOf(f);
    switch (op.cls) {
      case OpClass::IntAlu: return cfg.intAluLat;
      case OpClass::IntMul: return cfg.intMulLat;
      case OpClass::IntDiv: return cfg.intDivLat;
      case OpClass::FpAlu: return cfg.fpLat;
      case OpClass::Branch:
      case OpClass::Call:
      case OpClass::Ret:
      case OpClass::IndirBr: return cfg.branchLat;
      case OpClass::Store: return cfg.storeLat;
      case OpClass::Barrier:
      case OpClass::Nop: return 1;
      case OpClass::Load: return 0; // resolved in issueStage
    }
    return 1;
}

// --------------------------------------------------------------------
// Commit
// --------------------------------------------------------------------

bool
Core::commitStage()
{
    unsigned n = 0;
    while (!rob.empty() && n < cfg.retireWidth) {
        Inflight &f = rob.front();
        if (!f.done || f.doneCycle > now)
            break;
        const MicroOp &op = opOf(f);

        ++stats.instructions;
        if (op.isLoad()) {
            ++stats.loads;
            lvp_assert(!ldq.empty() && ldq.front().seq == f.seq,
                       "LDQ out of sync");
            ldq.pop_front();
            if (f.speculativeLoad)
                --specLoadsInFlight;
            auto it = inflightLoadPcs.find(op.pc);
            if (it != inflightLoadPcs.end() && --it->second == 0)
                inflightLoadPcs.erase(it);
            if (op.isPredictableLoad()) {
                ++stats.eligibleLoads;
                const bool used =
                    f.vpDelivered && f.vpReadyCycle <= f.doneCycle;
                if (used) {
                    ++stats.predictionsUsed;
                    const auto c = std::size_t(f.pred.component);
                    if (f.vpWrong) {
                        ++stats.predictionsWrong;
                        if (c < stats.wrongByComponent.size())
                            ++stats.wrongByComponent[c];
                    } else {
                        ++stats.predictionsCorrect;
                    }
                    if (c < stats.usedByComponent.size())
                        ++stats.usedByComponent[c];
                }
                LoadOutcome out;
                out.pc = op.pc;
                out.token = f.token;
                out.effAddr = op.effAddr;
                out.size = op.memSize;
                out.value = op.memValue;
                out.predictionUsed = used;
                out.predictionCorrect = used && !f.vpWrong;
                if (vpActive)
                    vp->train(out);
            } else if (f.token != 0) {
                vp->abandon(f.token);
            }
        } else if (op.isStore()) {
            ++stats.stores;
            lvp_assert(!stq.empty() && stq.front().seq == f.seq,
                       "STQ out of sync");
            stq.pop_front();
        } else if (op.isBranch()) {
            ++stats.branches;
        }
        if (commitHook) {
            CommitRecord rec;
            rec.traceIdx = f.traceIdx;
            rec.pc = op.pc;
            rec.cls = op.cls;
            rec.effAddr = op.effAddr;
            rec.memSize = op.memSize;
            rec.value = op.memValue;
            commitHook(rec);
        }
        rob.pop_front();
        ++committed;
        ++n;
    }
    if (n > 0 && vpActive)
        vp->onRetire(n);
    return n > 0;
}

// --------------------------------------------------------------------
// Completion (execution results become visible)
// --------------------------------------------------------------------

void
Core::validateLoad(Inflight &f)
{
    // Validation happens when the load executes (paper Section III-A).
    // Only predictions that were delivered in time can have poisoned
    // consumers; late or dropped predictions are harmless.
    if (!f.vpDelivered || f.vpReadyCycle > f.doneCycle)
        return;
    if (!f.vpWrong)
        return;
    ++stats.vpFlushes;
    // Flush everything younger; refetch from the next instruction.
    squashYoungerThan(f.seq + 1, f.traceIdx + 1);
    fetchResumeCycle = std::max(fetchResumeCycle, f.doneCycle + 1);
}

bool
Core::completeStage()
{
    if (issuedNotDone == 0)
        return false;
    bool any = false;
    for (std::size_t i = 0; i < rob.size(); ++i) {
        Inflight &f = rob[i];
        if (!f.issued || f.done || f.doneCycle > now)
            continue;
        f.done = true;
        --issuedNotDone;
        any = true;
        const MicroOp &op = opOf(f);

        if (f.branchMispredicted) {
            // The front end may resume along the correct path.
            fetchHalted = false;
            fetchResumeCycle = std::max(fetchResumeCycle, now + 1);
        }
        if (op.isLoad()) {
            f.paqPending = false; // probe is useless after execute
            validateLoad(f); // may squash ops younger than f
        }
    }
    return any;
}

// --------------------------------------------------------------------
// Issue
// --------------------------------------------------------------------

bool
Core::issueStage(unsigned &ls_used)
{
    unsigned issued_count = 0;
    unsigned alu_used = 0;
    ls_used = 0;
    if (iqCount == 0)
        return false;

    const unsigned alu_lanes = cfg.issueWidth - cfg.lsLanes;

    for (std::size_t i = 0;
         i < rob.size() && issued_count < cfg.issueWidth; ++i) {
        Inflight &f = rob[i];
        if (!f.inIQ || now < f.minIssueCycle ||
            now < f.sleepUntil)
            continue;
        const MicroOp &op = opOf(f);
        const bool is_ls = op.isLoad() || op.isStore();
        if (is_ls && ls_used >= cfg.lsLanes)
            continue;
        if (!is_ls && alu_used >= alu_lanes)
            continue;
        if (!depsReady(f))
            continue;
        if (op.cls == OpClass::Barrier && f.seq != rob.front().seq)
            continue; // barriers issue only when oldest

        Cycle lat = execLatency(f);

        if (op.isLoad()) {
            // Check the store queue for an older overlapping store
            // (addresses are perfectly known; the *policy* is governed
            // by the memory dependence predictor).
            const MemQEntry *conflict = nullptr;
            for (auto it = stq.rbegin(); it != stq.rend(); ++it) {
                if (it->seq >= f.seq)
                    continue;
                if (rangesOverlap(op.effAddr, op.memSize, it->addr,
                                  it->size)) {
                    conflict = &*it;
                    break;
                }
            }
            if (conflict) {
                const Inflight *st = findBySeqConst(conflict->seq);
                const bool resolved = st && st->issued;
                if (!resolved) {
                    if (memdep.shouldWait(op.pc))
                        continue; // hold the load in the IQ
                    f.speculativeLoad = true;
                    ++specLoadsInFlight;
                    const auto res =
                        memory.dataAccess(op.pc, op.effAddr, false);
                    lat = 1 + res.latency;
                } else {
                    lat = 1 + cfg.stlfLat; // store-to-load forwarding
                }
            } else {
                const auto res =
                    memory.dataAccess(op.pc, op.effAddr, false);
                lat = 1 + res.latency;
            }
        } else if (op.isStore()) {
            memory.dataAccess(op.pc, op.effAddr, true);
        }

        f.inIQ = false;
        f.issued = true;
        f.doneCycle = now + std::max<Cycle>(1, lat);
        --iqCount;
        ++issuedNotDone;
        ++issued_count;
        if (is_ls)
            ++ls_used;
        else
            ++alu_used;

        if (op.isStore())
            checkStoreOrderViolation(f); // may squash younger ops
    }
    return issued_count > 0;
}

void
Core::checkStoreOrderViolation(const Inflight &store)
{
    // A younger load that already executed speculatively past this
    // then-unresolved store read stale data: memory-order flush,
    // replaying from the load itself. Only loads flagged speculative
    // at issue can violate, so the scan is skipped entirely while
    // none are in flight (the common case).
    if (specLoadsInFlight == 0)
        return;
    const MicroOp &sop = opOf(store);
    // The LDQ is seq-sorted; start at the first younger load.
    auto it = std::lower_bound(
        ldq.begin(), ldq.end(), store.seq,
        [](const MemQEntry &e, InstSeqNum s) { return e.seq <= s; });
    for (; it != ldq.end(); ++it) {
        const MemQEntry &e = *it;
        if (!rangesOverlap(e.addr, e.size, sop.effAddr, sop.memSize))
            continue;
        Inflight *ld = findBySeq(e.seq);
        if (!ld || !ld->issued || !ld->speculativeLoad)
            continue;
        ++stats.memOrderFlushes;
        memdep.recordViolation(opOf(*ld).pc);
        const std::uint64_t replay_idx = ld->traceIdx;
        squashYoungerThan(ld->seq, replay_idx);
        fetchResumeCycle = std::max(fetchResumeCycle, now + 1);
        return;
    }
}

// --------------------------------------------------------------------
// PAQ: probe the D-cache with predicted addresses on LS bubbles
// --------------------------------------------------------------------

bool
Core::paqStage(unsigned ls_used)
{
    bool any = false;
    unsigned slots =
        cfg.lsLanes > ls_used ? cfg.lsLanes - ls_used : 0;
    while (slots > 0 && !paq.empty()) {
        const PaqEntry e = paq.front();
        paq.pop_front();
        --slots;
        Inflight *f = findBySeq(e.seq);
        if (!f || !f->paqPending || f->done)
            continue;
        f->paqPending = false;
        ++stats.paqProbes;
        any = true;
        const auto res = memory.paqProbe(e.addr);
        if (!res.l1Hit) {
            // Paper Figure 1 step 5 (prefetch on miss) is disabled:
            // the prediction is simply dropped.
            ++stats.paqMisses;
            continue;
        }
        const MicroOp &op = opOf(*f);
        // Conflicting-store avoidance (DLVP [3]): if an older
        // in-flight store to the probed bytes has not yet written the
        // cache, the probe would return stale data - drop the
        // prediction rather than poison consumers.
        bool conflict = false;
        for (auto it = stq.rbegin(); it != stq.rend(); ++it) {
            if (it->seq >= f->seq)
                continue;
            if (!rangesOverlap(e.addr, op.memSize, it->addr,
                               it->size))
                continue;
            const Inflight *st = findBySeqConst(it->seq);
            conflict = st && !st->issued;
            break;
        }
        if (conflict) {
            ++stats.paqConflictDrops;
            continue;
        }
        f->vpDelivered = true;
        f->vpReadyCycle = now + res.latency;
        // The delivered value is wrong iff the predicted address was
        // wrong (validated when the load executes).
        f->vpWrong = e.addr != op.effAddr;
    }
    return any;
}

// --------------------------------------------------------------------
// Dispatch (rename + queue allocation)
// --------------------------------------------------------------------

bool
Core::dispatchStage()
{
    unsigned n = 0;
    while (!fetchBuf.empty() && n < cfg.fetchWidth) {
        Inflight &f = fetchBuf.front();
        if (f.fetchCycle >= now)
            break; // fetched this cycle; dispatch next cycle
        if (rob.size() >= cfg.robSize || iqCount >= cfg.iqSize)
            break;
        const MicroOp &op = opOf(f);
        if (op.isLoad() && ldq.size() >= cfg.ldqSize)
            break;
        if (op.isStore() && stq.size() >= cfg.stqSize)
            break;

        // Rename: resolve sources against the last writers.
        for (unsigned s = 0; s < f.depSeq.size(); ++s) {
            const RegId r = op.src[s];
            f.depSeq[s] = (r == invalidReg) ? 0 : lastWriter[r];
        }
        if (op.dst != invalidReg)
            lastWriter[op.dst] = f.seq;

        f.inIQ = true;
        ++iqCount;
        if (op.isLoad())
            ldq.push_back({f.seq, op.effAddr, op.memSize});
        if (op.isStore())
            stq.push_back({f.seq, op.effAddr, op.memSize});

        // Address predictions enter the PAQ here (paper step 2).
        if (f.pred.isAddress()) {
            if (paq.size() < cfg.paqSize) {
                f.paqPending = true;
                paq.push_back({f.seq, f.pred.addr});
            } else {
                ++stats.paqDropsFull;
                f.pred = Prediction{};
            }
        }

        rob.push_back(f);
        fetchBuf.pop_front();
        ++n;
    }
    return n > 0;
}

// --------------------------------------------------------------------
// Fetch
// --------------------------------------------------------------------

void
Core::fetchOne()
{
    const MicroOp &op = code[fetchIdx];
    Inflight f;
    f.traceIdx = std::uint32_t(fetchIdx);
    f.seq = nextSeq++;
    f.fetchCycle = now;
    f.minIssueCycle = now + cfg.fetchToExecute - 1;
    const bool first_fetch = fetchIdx >= contextIdx;

    if (op.isBranch()) {
        bool mispredict = false;
        if (first_fetch) {
            switch (op.cls) {
              case OpClass::Branch: {
                const bool pred = tage.predict(op.pc);
                mispredict = pred != op.taken;
                tage.update(op.pc, op.taken);
                break;
              }
              case OpClass::Call:
                // Direct call: target known at decode; push the RAS.
                ras.push(op.pc + 4);
                tage.updateHistoryOnly(op.pc, true);
                break;
              case OpClass::Ret: {
                const Addr pred = ras.pop();
                mispredict = pred != op.target;
                tage.updateHistoryOnly(op.pc, true);
                break;
              }
              case OpClass::IndirBr: {
                const Addr pred = ittage.predict(op.pc);
                mispredict = pred != op.target;
                ittage.update(op.pc, op.target);
                tage.updateHistoryOnly(op.pc, true);
                break;
              }
              default:
                break;
            }
            if (vpActive)
                vp->notifyBranch(op.pc, op.taken, op.target);
            if (mispredict)
                ++stats.branchMispredicts;
        }
        f.branchMispredicted = mispredict;
        if (mispredict)
            fetchHalted = true;
    } else if (op.isPredictableLoad() && vpActive) {
        // During warmup (vpActive == false) predictable loads behave
        // like plain loads: no probe, no token, no notifies — the VP
        // sees nothing until the measurement region begins.
        auto stash = refetchStash.find(fetchIdx);
        if (stash != refetchStash.end()) {
            // Re-fetch after a flush: restore the first-fetch
            // prediction (history-checkpoint semantics).
            f.token = stash->second.token;
            f.pred = stash->second.pred;
            refetchStash.erase(stash);
        } else {
            LoadProbe probe;
            probe.pc = op.pc;
            probe.token = nextToken++;
            const auto it = inflightLoadPcs.find(op.pc);
            probe.inflightSamePc =
                it == inflightLoadPcs.end() ? 0 : it->second;
            f.token = probe.token;
            f.pred = vp->predict(probe);
            if (f.pred.valid())
                ++stats.predictionsMade;
        }
        if (f.pred.isValue()) {
            f.vpDelivered = true;
            f.vpReadyCycle = now; // available from rename onward
            f.vpWrong = f.pred.value != op.memValue;
        }
        if (first_fetch)
            vp->notifyLoad(op.pc);
    }
    if (op.isLoad())
        ++inflightLoadPcs[op.pc];

    if (first_fetch)
        contextIdx = fetchIdx + 1;
    ++fetchIdx;
    fetchBuf.push_back(f);
}

bool
Core::fetchStage()
{
    if (now < fetchResumeCycle || fetchHalted || fetchFrozen)
        return false;
    unsigned n = 0;
    while (n < cfg.fetchWidth && fetchIdx < code.size() &&
           fetchBuf.size() < 2 * cfg.fetchWidth && !fetchHalted) {
        fetchOne();
        ++n;
    }
    return n > 0;
}

// --------------------------------------------------------------------
// Squash / flush
// --------------------------------------------------------------------

void
Core::squashYoungerThan(InstSeqNum oldest_squashed,
                        std::uint64_t new_fetch_idx)
{
    auto drop_load_bookkeeping = [&](const Inflight &f) {
        const MicroOp &op = opOf(f);
        if (op.isLoad()) {
            auto it = inflightLoadPcs.find(op.pc);
            if (it != inflightLoadPcs.end() && --it->second == 0)
                inflightLoadPcs.erase(it);
            if (f.token != 0) {
                // Keep the predictor's per-token state alive when the
                // re-fetched load would predict the same thing: real
                // hardware restores the history checkpoint and probes
                // the *current* tables. A correct prediction would
                // recur; a wrong one would not (the triggering
                // mispredict resets its entry before the re-probe),
                // so wrong predictions are dropped and re-probed.
                const bool wrong =
                    (f.pred.isValue() &&
                     f.pred.value != op.memValue) ||
                    (f.pred.isAddress() &&
                     f.pred.addr != op.effAddr);
                refetchStash[f.traceIdx] = {
                    f.token, wrong ? Prediction{} : f.pred};
            }
        }
    };

    while (!rob.empty() && rob.back().seq >= oldest_squashed) {
        Inflight &f = rob.back();
        if (f.inIQ)
            --iqCount;
        if (f.issued && !f.done)
            --issuedNotDone;
        if (f.speculativeLoad)
            --specLoadsInFlight;
        drop_load_bookkeeping(f);
        ++stats.squashedOps;
        rob.pop_back();
    }
    while (!ldq.empty() && ldq.back().seq >= oldest_squashed)
        ldq.pop_back();
    while (!stq.empty() && stq.back().seq >= oldest_squashed)
        stq.pop_back();
    while (!fetchBuf.empty() &&
           fetchBuf.back().seq >= oldest_squashed) {
        drop_load_bookkeeping(fetchBuf.back());
        ++stats.squashedOps;
        fetchBuf.pop_back();
    }
    // The PAQ is filled in dispatch order and drained at the front,
    // so it is always seq-sorted and the squashed entries are exactly
    // its tail.
    while (!paq.empty() && paq.back().seq >= oldest_squashed)
        paq.pop_back();

    if (refetchStash.size() > stats.refetchStashPeak)
        stats.refetchStashPeak = refetchStash.size();

    rebuildRenameMap();
    fetchIdx = new_fetch_idx;

    // If the mispredicted branch that halted fetch was squashed,
    // fetch may resume; recompute from the surviving window.
    fetchHalted = false;
    for (const Inflight &f : rob) {
        if (f.branchMispredicted && !f.done) {
            fetchHalted = true;
            break;
        }
    }
}

void
Core::rebuildRenameMap()
{
    lastWriter.fill(0);
    for (const Inflight &f : rob) {
        const MicroOp &op = opOf(f);
        if (op.dst != invalidReg)
            lastWriter[op.dst] = f.seq;
    }
}

// --------------------------------------------------------------------
// Invariants (checked builds only; see common/check.hh)
// --------------------------------------------------------------------

void
Core::checkCycleInvariants() const
{
    // Occupancy bounds from the paper's Table III configuration.
    // These hold *every* cycle: dispatch is the only producer for
    // each structure and stalls when a queue is full.
    LVPSIM_CHECK(rob.size() <= cfg.robSize,
                 "ROB overflow: %zu > %u", rob.size(), cfg.robSize);
    LVPSIM_CHECK(iqCount <= cfg.iqSize,
                 "IQ overflow: %u > %u", iqCount, cfg.iqSize);
    LVPSIM_CHECK(ldq.size() <= cfg.ldqSize,
                 "LDQ overflow: %zu > %u", ldq.size(), cfg.ldqSize);
    LVPSIM_CHECK(stq.size() <= cfg.stqSize,
                 "STQ overflow: %zu > %u", stq.size(), cfg.stqSize);
    LVPSIM_CHECK(paq.size() <= cfg.paqSize,
                 "PAQ overflow: %zu > %u", paq.size(), cfg.paqSize);
    LVPSIM_CHECK(fetchBuf.size() <= 2 * cfg.fetchWidth,
                 "fetch buffer overflow: %zu > %u", fetchBuf.size(),
                 2 * cfg.fetchWidth);
    LVPSIM_CHECK(iqCount <= rob.size(),
                 "IQ count %u exceeds ROB occupancy %zu", iqCount,
                 rob.size());
    LVPSIM_CHECK(issuedNotDone <= rob.size(),
                 "issued-not-done %llu exceeds ROB occupancy %zu",
                 static_cast<unsigned long long>(issuedNotDone),
                 rob.size());
    LVPSIM_CHECK(specLoadsInFlight <= ldq.size(),
                 "speculative-load count %llu exceeds LDQ occupancy "
                 "%zu",
                 static_cast<unsigned long long>(specLoadsInFlight),
                 ldq.size());
    // The refetch stash holds only trace indices ahead of fetchIdx
    // that were in flight when squashed, so it can never outgrow the
    // in-flight window.
    LVPSIM_CHECK(refetchStash.size() <= inflightWindow(),
                 "refetch stash overflow: %zu > %zu",
                 refetchStash.size(), inflightWindow());
}

void
Core::checkFullInvariants() const
{
    // O(window) structural cross-checks, amortized over
    // fullCheckPeriod cycles.
    InstSeqNum prev = 0;
    unsigned in_iq = 0;
    std::uint64_t issued_not_done = 0;
    std::uint64_t spec_loads = 0;
    std::size_t n_loads = 0, n_stores = 0;
    std::size_t live_tokens = 0;
    for (const Inflight &f : rob) {
        LVPSIM_CHECK(f.seq > prev, "ROB not in seq order");
        prev = f.seq;
        in_iq += f.inIQ ? 1 : 0;
        issued_not_done += (f.issued && !f.done) ? 1 : 0;
        spec_loads += f.speculativeLoad ? 1 : 0;
        live_tokens += f.token != 0 ? 1 : 0;
        LVPSIM_CHECK(!(f.inIQ && f.issued),
                     "op both in IQ and issued (seq %llu)",
                     static_cast<unsigned long long>(f.seq));
        const auto &op = opOf(f);
        n_loads += op.isLoad() ? 1 : 0;
        n_stores += op.isStore() ? 1 : 0;
    }
    for (const Inflight &f : fetchBuf)
        live_tokens += f.token != 0 ? 1 : 0;
    LVPSIM_CHECK(in_iq == iqCount,
                 "IQ count drift: cached %u, actual %u", iqCount,
                 in_iq);
    LVPSIM_CHECK(issued_not_done == issuedNotDone,
                 "issuedNotDone drift: cached %llu, actual %llu",
                 static_cast<unsigned long long>(issuedNotDone),
                 static_cast<unsigned long long>(issued_not_done));
    LVPSIM_CHECK(spec_loads == specLoadsInFlight,
                 "specLoadsInFlight drift: cached %llu, actual %llu",
                 static_cast<unsigned long long>(specLoadsInFlight),
                 static_cast<unsigned long long>(spec_loads));
    // Every pending predictor snapshot belongs to a live token: one
    // held by an in-flight load, or one parked in the refetch stash.
    LVPSIM_CHECK(vp->pendingProbes() <=
                     live_tokens + refetchStash.size(),
                 "predictor snapshot leak: %zu pending, %zu live "
                 "tokens + %zu stashed",
                 vp->pendingProbes(), live_tokens,
                 refetchStash.size());
    // Every ROB load/store has exactly one LDQ/STQ entry, in order.
    LVPSIM_CHECK(ldq.size() == n_loads,
                 "LDQ/ROB drift: %zu entries, %zu loads", ldq.size(),
                 n_loads);
    LVPSIM_CHECK(stq.size() == n_stores,
                 "STQ/ROB drift: %zu entries, %zu stores",
                 stq.size(), n_stores);
    prev = 0;
    for (const MemQEntry &e : ldq) {
        LVPSIM_CHECK(e.seq > prev, "LDQ not in seq order");
        prev = e.seq;
        LVPSIM_CHECK(findBySeqConst(e.seq) != nullptr,
                     "LDQ entry seq %llu not in ROB",
                     static_cast<unsigned long long>(e.seq));
    }
    prev = 0;
    for (const MemQEntry &e : stq) {
        LVPSIM_CHECK(e.seq > prev, "STQ not in seq order");
        prev = e.seq;
        LVPSIM_CHECK(findBySeqConst(e.seq) != nullptr,
                     "STQ entry seq %llu not in ROB",
                     static_cast<unsigned long long>(e.seq));
    }
}

// --------------------------------------------------------------------
// Main loop
// --------------------------------------------------------------------

Cycle
Core::nextEventCycle() const
{
    Cycle next = std::numeric_limits<Cycle>::max();
    for (const Inflight &f : rob) {
        if (f.issued && !f.done)
            next = std::min(next, f.doneCycle);
        else if (f.inIQ)
            next = std::min(next, f.minIssueCycle);
    }
    if (fetchResumeCycle > now &&
        (fetchIdx < code.size() || !fetchBuf.empty()))
        next = std::min(next, fetchResumeCycle);
    for (const Inflight &f : fetchBuf)
        next = std::min(next, f.fetchCycle + 1);
    return next;
}

void
Core::simulate(std::uint64_t commit_target)
{
    while ((!fetchFrozen && fetchIdx < code.size()) || !rob.empty() ||
           !fetchBuf.empty()) {
        if (commit_target && committed >= commit_target)
            break;
        ++now;
        bool any = false;
        any |= commitStage();
        any |= completeStage();
        unsigned ls_used = 0;
        any |= issueStage(ls_used);
        any |= paqStage(ls_used);
        any |= dispatchStage();
        any |= fetchStage();

        if (committed >= nextProgressAt) {
            progressHook(committed);
            nextProgressAt = committed + progressEvery;
        }

#if LVPSIM_CHECKS_ENABLED
        checkCycleInvariants();
        if (now % fullCheckPeriod == 0)
            checkFullInvariants();
#endif

        if (!any) {
            const Cycle next = nextEventCycle();
            lvp_assert(next != std::numeric_limits<Cycle>::max(),
                       "pipeline deadlock at cycle %llu",
                       static_cast<unsigned long long>(now));
            if (next > now + 1)
                now = next - 1; // the loop header will ++now
        }
    }
}

void
Core::warmup(std::uint64_t n)
{
    if (n == 0)
        return;
    vpActive = false;
    simulate(committed + n);
    // Drain: freeze fetch and run the in-flight window dry so the
    // measurement (or checkpoint) boundary is quiescent. A squash
    // during the drain may rewind fetchIdx; those instructions are
    // simply re-fetched once measurement resumes fetch.
    fetchFrozen = true;
    simulate(0);
    fetchFrozen = false;
    vpActive = true;
    LVPSIM_CHECK(rob.empty() && fetchBuf.empty() &&
                     refetchStash.empty(),
                 "warmup drain left %zu ROB + %zu fetch-buffer + %zu "
                 "stashed entries",
                 rob.size(), fetchBuf.size(), refetchStash.size());
}

void
Core::drain()
{
    fetchFrozen = true;
    simulate(0);
    fetchFrozen = false;
    // Squashes during the drain can park predictions (with live
    // predictor tokens) in the refetch stash; nothing will re-fetch
    // them on this core, so release their snapshots. Tokens are
    // abandoned in sorted order — FlatMap iteration order is
    // hash-shaped, and the predictor must see the same sequence on
    // every run.
    std::vector<std::uint64_t> stale;
    stale.reserve(refetchStash.size());
    for (const auto &kv : refetchStash)
        stale.push_back(kv.second.token);
    std::sort(stale.begin(), stale.end());
    for (std::uint64_t t : stale)
        vp->abandon(t);
    refetchStash.clear();
    LVPSIM_CHECK(rob.empty() && fetchBuf.empty() &&
                     vp->pendingProbes() == 0,
                 "drain left %zu ROB + %zu fetch-buffer entries, %zu "
                 "pending probes",
                 rob.size(), fetchBuf.size(), vp->pendingProbes());
}

void
Core::functionalWarmup(std::uint64_t n)
{
    lvp_assert(rob.empty() && fetchBuf.empty(),
               "functionalWarmup needs a quiescent machine");
    const std::uint64_t end =
        std::min<std::uint64_t>(fetchIdx + n, code.size());
    while (fetchIdx < end) {
        const MicroOp &op = code[fetchIdx];
        // Branch-predictor training replicates fetchOne()'s
        // first-fetch sequence exactly; with an empty pipeline every
        // index is a first fetch (fetchIdx >= contextIdx always).
        switch (op.cls) {
          case OpClass::Branch: {
            const bool pred = tage.predict(op.pc);
            (void)pred;
            tage.update(op.pc, op.taken);
            break;
          }
          case OpClass::Call:
            ras.push(op.pc + 4);
            tage.updateHistoryOnly(op.pc, true);
            break;
          case OpClass::Ret:
            (void)ras.pop();
            tage.updateHistoryOnly(op.pc, true);
            break;
          case OpClass::IndirBr:
            (void)ittage.predict(op.pc);
            ittage.update(op.pc, op.target);
            tage.updateHistoryOnly(op.pc, true);
            break;
          case OpClass::Load:
            memory.dataAccess(op.pc, op.effAddr, false);
            break;
          case OpClass::Store:
            memory.dataAccess(op.pc, op.effAddr, true);
            break;
          default:
            break;
        }
        contextIdx = fetchIdx + 1;
        ++fetchIdx;
        ++committed;
        if (committed >= nextProgressAt) {
            progressHook(committed);
            nextProgressAt = committed + progressEvery;
        }
    }
}

void
Core::setProgressHook(std::uint64_t every, ProgressHook fn)
{
    if (every == 0 || !fn) {
        progressHook = nullptr;
        progressEvery = 0;
        nextProgressAt = std::numeric_limits<std::uint64_t>::max();
        return;
    }
    progressHook = std::move(fn);
    progressEvery = every;
    nextProgressAt = committed + every;
}

SimStats
Core::run(std::uint64_t max_instrs)
{
    // Measure relative to the current (possibly post-warmup) state so
    // warmup cycles and misses never pollute the reported run.
    stats = SimStats{};
    const std::uint64_t l1d_miss0 = memory.l1d().misses();
    const std::uint64_t l2_miss0 = memory.l2().misses();
    const Cycle cycle0 = now;

    simulate(max_instrs ? committed + max_instrs : 0);

    stats.cycles = now - cycle0;
    stats.l1dMisses = memory.l1d().misses() - l1d_miss0;
    stats.l2Misses = memory.l2().misses() - l2_miss0;
    if (refetchStash.size() > stats.refetchStashPeak)
        stats.refetchStashPeak = refetchStash.size();
    stats.vpSnapshotsPeak = vp->pendingProbesPeak();
    // At natural trace exhaustion every stashed prediction must have
    // been consumed by its re-fetch (the stash only holds indices
    // ahead of fetchIdx); an early max_instrs stop may leave some.
    LVPSIM_CHECK(fetchIdx < code.size() || !rob.empty() ||
                     !fetchBuf.empty() || refetchStash.empty(),
                 "refetch stash leak: %zu entries at trace "
                 "exhaustion",
                 refetchStash.size());
    return stats;
}

void
Core::dumpSubstrateStats(std::ostream &os) const
{
    auto rate = [](std::uint64_t part, std::uint64_t whole) {
        return whole ? 100.0 * double(part) / double(whole) : 0.0;
    };
    const auto &l1d = memory.l1dConst();
    const auto &l2 = memory.l2Const();
    const auto &l3 = memory.l3Const();
    const auto &tlb = memory.tlbConst();
    os << "  l1d: " << l1d.hits() << " hits, " << l1d.misses()
       << " misses (" << rate(l1d.misses(),
                              l1d.hits() + l1d.misses())
       << "% miss)\n"
       << "  l2:  " << l2.hits() << " hits, " << l2.misses()
       << " misses\n"
       << "  l3:  " << l3.hits() << " hits, " << l3.misses()
       << " misses\n"
       << "  dtlb: " << tlb.hits() << " hits, " << tlb.misses()
       << " misses\n"
       << "  prefetches issued: " << memory.prefetchesIssued()
       << "\n"
       << "  tage: " << tage.lookups() << " lookups, "
       << tage.mispredicts() << " mispredicts ("
       << rate(tage.mispredicts(), tage.lookups()) << "%)\n"
       << "  ittage: " << ittage.lookups() << " lookups, "
       << ittage.mispredicts() << " mispredicts\n"
       << "  memdep violations: " << memdep.violations() << "\n";
}

// --------------------------------------------------------------------
// Checkpointing
// --------------------------------------------------------------------

void
Core::saveState(Snapshot &s) const
{
    memory.saveState(s.memory);
    memdep.saveState(s.memdep);
    tage.saveState(s.tage);
    ittage.saveState(s.ittage);
    ras.saveState(s.ras);

    s.now = now;
    s.fetchIdx = fetchIdx;
    s.contextIdx = contextIdx;
    s.fetchResumeCycle = fetchResumeCycle;
    s.fetchHalted = fetchHalted;
    s.fetchFrozen = fetchFrozen;
    s.vpActive = vpActive;
    s.nextSeq = nextSeq;
    s.nextToken = nextToken;
    s.committed = committed;
    s.issuedNotDone = issuedNotDone;

    s.rob = rob;
    s.fetchBuf = fetchBuf;
    s.paq = paq;
    s.ldq = ldq;
    s.stq = stq;
    s.iqCount = iqCount;
    s.specLoadsInFlight = specLoadsInFlight;
    s.lastWriter = lastWriter;
    s.inflightLoadPcs = inflightLoadPcs;
    s.refetchStash = refetchStash;

    s.stats = stats;
}

void
Core::restoreState(const Snapshot &s)
{
    memory.restoreState(s.memory);
    memdep.restoreState(s.memdep);
    tage.restoreState(s.tage);
    ittage.restoreState(s.ittage);
    ras.restoreState(s.ras);

    now = s.now;
    fetchIdx = s.fetchIdx;
    contextIdx = s.contextIdx;
    fetchResumeCycle = s.fetchResumeCycle;
    fetchHalted = s.fetchHalted;
    fetchFrozen = s.fetchFrozen;
    vpActive = s.vpActive;
    nextSeq = s.nextSeq;
    nextToken = s.nextToken;
    committed = s.committed;
    issuedNotDone = s.issuedNotDone;

    rob = s.rob;
    fetchBuf = s.fetchBuf;
    paq = s.paq;
    ldq = s.ldq;
    stq = s.stq;
    iqCount = s.iqCount;
    specLoadsInFlight = s.specLoadsInFlight;
    lastWriter = s.lastWriter;
    inflightLoadPcs = s.inflightLoadPcs;
    refetchStash = s.refetchStash;

    stats = s.stats;
}

} // namespace pipe
} // namespace lvpsim
