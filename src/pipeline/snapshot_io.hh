/**
 * @file
 * Binary (de)serialization of the pipeline checkpoint state — the
 * bridge between `pipe::Core::Snapshot` and the on-disk checkpoint
 * store (src/sim/checkpoint_store.hh, docs/performance.md).
 *
 * Every substrate snapshot that `Core::Snapshot` aggregates gets an
 * explicit overload pair here, and each overload names every member
 * of its snapshot struct: lvplint's state-snapshot check
 * cross-references the member lists against these bodies, so a field
 * added to a snapshot without a matching serialize/deserialize line
 * fails the lint gate instead of silently drifting the disk format.
 *
 * Deserialization is *total*: structurally or semantically invalid
 * input flips the BinReader's sticky fail flag (checked by the store,
 * which treats it as a miss) and never asserts or throws. Geometry
 * mismatches (e.g. a snapshot from a differently sized config) are
 * caught one level up by the store key, which encodes the full run
 * config; this layer only validates what it needs to stay memory-safe.
 */

#pragma once

#include "common/binio.hh"
#include "pipeline/core.hh"

namespace lvpsim
{
namespace pipe
{

/**
 * Bumped whenever any serializeSnapshot encoding changes shape.
 * Mismatched versions are store misses, never decode attempts.
 */
constexpr std::uint32_t kSnapshotFormatVersion = 1;

void serializeSnapshot(BinWriter &w, const mem::Cache::Snapshot &s);
void deserializeSnapshot(BinReader &r, mem::Cache::Snapshot &s);

void serializeSnapshot(BinWriter &w, const mem::Tlb::Snapshot &s);
void deserializeSnapshot(BinReader &r, mem::Tlb::Snapshot &s);

void serializeSnapshot(BinWriter &w,
                       const mem::StridePrefetcher::Snapshot &s);
void deserializeSnapshot(BinReader &r, mem::StridePrefetcher::Snapshot &s);

void serializeSnapshot(BinWriter &w,
                       const mem::MemDepPredictor::Snapshot &s);
void deserializeSnapshot(BinReader &r, mem::MemDepPredictor::Snapshot &s);

void serializeSnapshot(BinWriter &w,
                       const mem::MemoryHierarchy::Snapshot &s);
void deserializeSnapshot(BinReader &r, mem::MemoryHierarchy::Snapshot &s);

void serializeSnapshot(BinWriter &w, const branch::Tage::Snapshot &s);
void deserializeSnapshot(BinReader &r, branch::Tage::Snapshot &s);

void serializeSnapshot(BinWriter &w, const branch::Ittage::Snapshot &s);
void deserializeSnapshot(BinReader &r, branch::Ittage::Snapshot &s);

void serializeSnapshot(BinWriter &w,
                       const branch::ReturnAddressStack::Snapshot &s);
void deserializeSnapshot(BinReader &r,
                         branch::ReturnAddressStack::Snapshot &s);

/**
 * Counters travel as (FNV-1a name hash, value) pairs: renaming,
 * adding, or removing a counter changes the stream and turns stale
 * store entries into misses automatically.
 */
void serializeSnapshot(BinWriter &w, const SimStats &s);
void deserializeSnapshot(BinReader &r, SimStats &s);

void serializeSnapshot(BinWriter &w, const Core::Snapshot &s);
void deserializeSnapshot(BinReader &r, Core::Snapshot &s);

} // namespace pipe
} // namespace lvpsim
