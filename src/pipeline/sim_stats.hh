/**
 * @file
 * Per-run statistics produced by the core model.
 */

#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string_view>

namespace lvpsim
{
namespace pipe
{

struct SimStats
{
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;

    std::uint64_t loads = 0;
    std::uint64_t eligibleLoads = 0; ///< predictable (non-exclusive)
    std::uint64_t stores = 0;
    std::uint64_t branches = 0;
    std::uint64_t branchMispredicts = 0;

    /// Value prediction activity (committed-path only).
    std::uint64_t predictionsMade = 0;    ///< probe returned non-None
    std::uint64_t predictionsUsed = 0;    ///< value reached consumers
    std::uint64_t predictionsCorrect = 0;
    std::uint64_t predictionsWrong = 0;   ///< each costs a flush
    std::uint64_t paqProbes = 0;
    std::uint64_t paqMisses = 0;          ///< dropped: D-cache miss
    std::uint64_t paqDropsFull = 0;       ///< dropped: PAQ full
    std::uint64_t paqConflictDrops = 0;   ///< dropped: older store

    /// Used predictions per component (index = ComponentId).
    std::array<std::uint64_t, 5> usedByComponent{};
    std::array<std::uint64_t, 5> wrongByComponent{};

    std::uint64_t vpFlushes = 0;
    std::uint64_t memOrderFlushes = 0;
    std::uint64_t squashedOps = 0;

    /// High-water marks of the bounded hot-path maps (see
    /// docs/performance.md): the core's squashed-prediction stash
    /// and the predictor's pending per-token snapshots. Both must
    /// stay within the in-flight window; the peaks make the margin
    /// observable in results JSON.
    std::uint64_t refetchStashPeak = 0;
    std::uint64_t vpSnapshotsPeak = 0;

    std::uint64_t l1dMisses = 0;
    std::uint64_t l2Misses = 0;

    double
    ipc() const
    {
        return cycles ? double(instructions) / double(cycles) : 0.0;
    }

    /** Paper's coverage: fraction of eligible loads with a used
     *  prediction. */
    double
    coverage() const
    {
        return eligibleLoads
                   ? double(predictionsUsed) / double(eligibleLoads)
                   : 0.0;
    }

    /** Paper's accuracy: fraction of used predictions that were
     *  correct. */
    double
    accuracy() const
    {
        return predictionsUsed
                   ? double(predictionsCorrect) /
                         double(predictionsUsed)
                   : 1.0;
    }

    void dump(std::ostream &os) const;
};

/**
 * Visit every raw counter of `s` as a (name, value) pair, in a fixed
 * declaration order. The single source of truth for serializing a
 * SimStats (the JSON results layer iterates this instead of keeping
 * its own field list); array counters appear as
 * `used_by_component_<i>` / `wrong_by_component_<i>`.
 */
void forEachCounter(
    const SimStats &s,
    const std::function<void(std::string_view, std::uint64_t)> &fn);

/** Set one counter by its forEachCounter() name. False if unknown. */
bool setCounter(SimStats &s, std::string_view name, std::uint64_t v);

/** True iff every counter of a and b is equal (bit-identical run). */
bool statsEqual(const SimStats &a, const SimStats &b);

} // namespace pipe
} // namespace lvpsim

