/**
 * @file
 * Baseline core configuration, copied from the paper's Table III
 * (Skylake-like).
 */

#pragma once

#include "branch/ittage.hh"
#include "branch/tage.hh"
#include "common/types.hh"
#include "memory/hierarchy.hh"

namespace lvpsim
{
namespace pipe
{

struct CoreConfig
{
    /// Fetch through Rename width (Table III).
    unsigned fetchWidth = 4;
    /// Issue through Commit width; 2 of the 8 lanes are load/store.
    unsigned issueWidth = 8;
    unsigned lsLanes = 2;
    unsigned retireWidth = 8;

    unsigned robSize = 224;
    unsigned iqSize = 97;
    unsigned ldqSize = 72;
    unsigned stqSize = 56;

    /// Minimum cycles between fetch and execute (Table III: 13).
    Cycle fetchToExecute = 13;

    /// Predicted Address Queue capacity (Figure 1).
    unsigned paqSize = 16;

    /// Execution latencies by class.
    Cycle intAluLat = 1;
    Cycle intMulLat = 3;
    Cycle intDivLat = 12;
    Cycle fpLat = 4;
    Cycle branchLat = 1;
    Cycle storeLat = 1;
    Cycle stlfLat = 1; ///< store-to-load forwarding

    mem::HierarchyConfig memory{};
    branch::TageConfig tage{};
    branch::IttageConfig ittage{};
    unsigned rasDepth = 16;

    std::uint64_t seed = 0xc0de;
};

} // namespace pipe
} // namespace lvpsim

