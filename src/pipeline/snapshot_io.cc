#include "pipeline/snapshot_io.hh"

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/bitutils.hh"

namespace lvpsim
{
namespace pipe
{
namespace
{

// The element structs behind several snapshot containers (cache
// lines, TAGE entries, the core's Inflight records, ...) are private
// nested types of their owning class. The helpers below deduce them
// from the (public) snapshot members instead of naming them, which
// keeps the types private without a friend declaration in every
// header.

template <typename T, typename PutFn>
void
putVec(BinWriter &w, const std::vector<T> &v, PutFn put)
{
    w.u64(v.size());
    for (const auto &e : v)
        put(w, e);
}

/** @p minBytesPerElem bounds allocation from a corrupt length field. */
template <typename T, typename GetFn>
void
getVec(BinReader &r, std::vector<T> &v, std::size_t minBytesPerElem,
       GetFn get)
{
    const std::size_t n = r.count(minBytesPerElem);
    v.clear();
    v.resize(n);
    for (auto &e : v) {
        get(r, e);
        if (!r.ok())
            return;
    }
}

template <typename T, typename PutFn>
void
putRing(BinWriter &w, const RingBuffer<T> &rb, PutFn put)
{
    w.u64(rb.capacity());
    w.u64(rb.size());
    for (std::size_t i = 0; i < rb.size(); ++i)
        put(w, rb[i]);
}

template <typename T, typename GetFn>
void
getRing(BinReader &r, RingBuffer<T> &rb, GetFn get)
{
    constexpr std::uint64_t maxCapacity = std::uint64_t(1) << 20;
    const std::uint64_t cap = r.u64();
    const std::size_t n = r.count(1);
    if (!r.ok() || cap == 0 || cap > maxCapacity || n > cap ||
        !isPowerOf2(cap)) {
        r.fail();
        return;
    }
    rb.configure(static_cast<std::size_t>(cap));
    for (std::size_t i = 0; i < n; ++i) {
        T e{};
        get(r, e);
        if (!r.ok())
            return;
        rb.push_back(std::move(e));
    }
}

template <typename K, typename V, typename H, typename PutFn>
void
putMap(BinWriter &w, const FlatMap<K, V, H> &m, PutFn putVal)
{
    const auto &slots = m.rawSlots();
    const auto &used = m.rawUsed();
    w.u64(slots.size());
    w.u64(m.size());
    for (std::size_t i = 0; i < slots.size(); ++i) {
        w.u8(used[i]);
        if (used[i]) {
            w.u64(static_cast<std::uint64_t>(slots[i].first));
            putVal(w, slots[i].second);
        }
    }
}

template <typename K, typename V, typename H, typename GetFn>
void
getMap(BinReader &r, FlatMap<K, V, H> &m, GetFn getVal)
{
    const std::size_t cap = r.count(1);
    const std::uint64_t live = r.u64();
    // The in-memory map keeps load factor <= 3/4 (a full table would
    // make probe loops unbounded), so a layout claiming more is
    // corrupt, not merely unusual.
    if (!r.ok() || (cap != 0 && !isPowerOf2(cap)) || live > cap ||
        (cap != 0 && live * 4 > cap * 3)) {
        r.fail();
        return;
    }
    std::vector<typename FlatMap<K, V, H>::value_type> slots(cap);
    std::vector<std::uint8_t> used(cap, 0);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < cap; ++i) {
        const std::uint8_t u = r.u8();
        if (u > 1) {
            r.fail();
            return;
        }
        used[i] = u;
        if (u != 0) {
            slots[i].first = static_cast<K>(r.u64());
            getVal(r, slots[i].second);
            ++seen;
        }
        if (!r.ok())
            return;
    }
    if (seen != live) {
        r.fail();
        return;
    }
    m.restoreRaw(std::move(slots), std::move(used),
                 static_cast<std::size_t>(live));
}

void
putFolds(BinWriter &w, const std::vector<branch::FoldedHistory> &v)
{
    w.u64(v.size());
    for (const auto &f : v) {
        w.u32(f.length());
        w.u32(f.foldedLength());
        w.u32(f.value());
    }
}

void
getFolds(BinReader &r, std::vector<branch::FoldedHistory> &v)
{
    const std::size_t n = r.count(12);
    v.clear();
    v.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t orig = r.u32();
        const std::uint32_t compLen = r.u32();
        const std::uint32_t val = r.u32();
        // The FoldedHistory constructor asserts its width; validate
        // here first so corrupt input stays a store miss.
        if (!r.ok() || compLen < 1 || compLen > 31) {
            r.fail();
            return;
        }
        branch::FoldedHistory f(orig, compLen);
        f.restoreRaw(val);
        v.push_back(f);
    }
}

void
putHistoryRing(BinWriter &w, const branch::HistoryRing &h)
{
    w.u64(h.rawBits().size());
    w.u64(h.rawHead());
    w.bytes(h.rawBits().data(), h.rawBits().size());
}

void
getHistoryRing(BinReader &r, branch::HistoryRing &h)
{
    const std::size_t n = r.count(1);
    const std::uint64_t head = r.u64();
    if (!r.ok() || n == 0 || head >= n) {
        r.fail();
        return;
    }
    std::vector<std::uint8_t> bits(n);
    if (!r.bytes(bits.data(), n))
        return;
    for (const std::uint8_t b : bits) {
        if (b > 1) {
            r.fail();
            return;
        }
    }
    h.restoreRaw(std::move(bits), static_cast<std::size_t>(head));
}

void
putRng(BinWriter &w, const Xoshiro256 &g)
{
    for (const std::uint64_t word : g.rawState())
        w.u64(word);
}

void
getRng(BinReader &r, Xoshiro256 &g)
{
    std::array<std::uint64_t, 4> st;
    for (auto &word : st)
        word = r.u64();
    if (r.ok())
        g.restoreRaw(st);
}

void
putPrediction(BinWriter &w, const Prediction &p)
{
    w.u8(static_cast<std::uint8_t>(p.kind));
    w.u64(p.value);
    w.u64(p.addr);
    w.i8(static_cast<std::int8_t>(p.component));
}

void
getPrediction(BinReader &r, Prediction &p)
{
    const std::uint8_t k = r.u8();
    if (k > static_cast<std::uint8_t>(Prediction::Kind::Address)) {
        r.fail();
        return;
    }
    p.kind = static_cast<Prediction::Kind>(k);
    p.value = r.u64();
    p.addr = r.u64();
    const std::int8_t c = r.i8();
    if (c < static_cast<std::int8_t>(ComponentId::None) ||
        c > static_cast<std::int8_t>(ComponentId::Other)) {
        r.fail();
        return;
    }
    p.component = static_cast<ComponentId>(c);
}

/** Core::Inflight, deduced (the type is private to Core). */
template <typename E>
void
putInflight(BinWriter &w, const E &e)
{
    w.u32(e.traceIdx);
    w.u64(e.seq);
    w.u64(e.fetchCycle);
    w.u64(e.minIssueCycle);
    w.u64(e.doneCycle);
    w.u64(e.sleepUntil);
    w.b(e.inIQ);
    w.b(e.issued);
    w.b(e.done);
    for (const auto d : e.depSeq)
        w.u64(d);
    w.b(e.branchMispredicted);
    putPrediction(w, e.pred);
    w.u64(e.token);
    w.b(e.vpDelivered);
    w.u64(e.vpReadyCycle);
    w.b(e.vpWrong);
    w.b(e.paqPending);
    w.b(e.speculativeLoad);
}

template <typename E>
void
getInflight(BinReader &r, E &e)
{
    e.traceIdx = r.u32();
    e.seq = r.u64();
    e.fetchCycle = r.u64();
    e.minIssueCycle = r.u64();
    e.doneCycle = r.u64();
    e.sleepUntil = r.u64();
    e.inIQ = r.b();
    e.issued = r.b();
    e.done = r.b();
    for (auto &d : e.depSeq)
        d = r.u64();
    e.branchMispredicted = r.b();
    getPrediction(r, e.pred);
    e.token = r.u64();
    e.vpDelivered = r.b();
    e.vpReadyCycle = r.u64();
    e.vpWrong = r.b();
    e.paqPending = r.b();
    e.speculativeLoad = r.b();
}

} // namespace

void
serializeSnapshot(BinWriter &w, const mem::Cache::Snapshot &s)
{
    putVec(w, s.lines, [](BinWriter &wr, const auto &l) {
        wr.b(l.valid);
        wr.b(l.dirty);
        wr.u64(l.tag);
        wr.u64(l.lastUse);
    });
    w.u64(s.useClock);
    w.u64(s.numHits);
    w.u64(s.numMisses);
}

void
deserializeSnapshot(BinReader &r, mem::Cache::Snapshot &s)
{
    getVec(r, s.lines, 18, [](BinReader &rd, auto &l) {
        l.valid = rd.b();
        l.dirty = rd.b();
        l.tag = rd.u64();
        l.lastUse = rd.u64();
    });
    s.useClock = r.u64();
    s.numHits = r.u64();
    s.numMisses = r.u64();
}

void
serializeSnapshot(BinWriter &w, const mem::Tlb::Snapshot &s)
{
    putVec(w, s.sets, [](BinWriter &wr, const auto &way) {
        wr.b(way.valid);
        wr.u64(way.vpn);
        wr.u64(way.lastUse);
    });
    w.u64(s.useClock);
    w.u64(s.numHits);
    w.u64(s.numMisses);
}

void
deserializeSnapshot(BinReader &r, mem::Tlb::Snapshot &s)
{
    getVec(r, s.sets, 17, [](BinReader &rd, auto &way) {
        way.valid = rd.b();
        way.vpn = rd.u64();
        way.lastUse = rd.u64();
    });
    s.useClock = r.u64();
    s.numHits = r.u64();
    s.numMisses = r.u64();
}

void
serializeSnapshot(BinWriter &w, const mem::StridePrefetcher::Snapshot &s)
{
    putVec(w, s.table, [](BinWriter &wr, const auto &e) {
        wr.b(e.valid);
        wr.u16(e.tag);
        wr.u64(e.lastAddr);
        wr.i64(e.stride);
        wr.u8(e.conf);
    });
    w.u64(s.numIssued);
}

void
deserializeSnapshot(BinReader &r, mem::StridePrefetcher::Snapshot &s)
{
    getVec(r, s.table, 20, [](BinReader &rd, auto &e) {
        e.valid = rd.b();
        e.tag = rd.u16();
        e.lastAddr = rd.u64();
        e.stride = rd.i64();
        e.conf = rd.u8();
    });
    s.numIssued = r.u64();
}

void
serializeSnapshot(BinWriter &w, const mem::MemDepPredictor::Snapshot &s)
{
    w.u64(s.waitBits.size());
    for (const bool bit : s.waitBits)
        w.b(bit);
    w.u64(s.accesses);
    w.u64(s.numViolations);
}

void
deserializeSnapshot(BinReader &r, mem::MemDepPredictor::Snapshot &s)
{
    const std::size_t n = r.count(1);
    s.waitBits.assign(n, false);
    for (std::size_t i = 0; i < n && r.ok(); ++i)
        s.waitBits[i] = r.b();
    s.accesses = r.u64();
    s.numViolations = r.u64();
}

void
serializeSnapshot(BinWriter &w, const mem::MemoryHierarchy::Snapshot &s)
{
    serializeSnapshot(w, s.icache);
    serializeSnapshot(w, s.dcache);
    serializeSnapshot(w, s.l2cache);
    serializeSnapshot(w, s.l3cache);
    serializeSnapshot(w, s.dtlb);
    serializeSnapshot(w, s.pf);
}

void
deserializeSnapshot(BinReader &r, mem::MemoryHierarchy::Snapshot &s)
{
    deserializeSnapshot(r, s.icache);
    deserializeSnapshot(r, s.dcache);
    deserializeSnapshot(r, s.l2cache);
    deserializeSnapshot(r, s.l3cache);
    deserializeSnapshot(r, s.dtlb);
    deserializeSnapshot(r, s.pf);
}

void
serializeSnapshot(BinWriter &w, const branch::Tage::Snapshot &s)
{
    putVec(w, s.base,
           [](BinWriter &wr, const std::int8_t c) { wr.i8(c); });
    w.u64(s.tables.size());
    for (const auto &table : s.tables) {
        putVec(w, table, [](BinWriter &wr, const auto &e) {
            wr.u16(e.tag);
            wr.i8(e.ctr);
            wr.u8(e.useful);
            wr.b(e.valid);
        });
    }
    putFolds(w, s.foldIdx);
    putFolds(w, s.foldTag1);
    putFolds(w, s.foldTag2);
    putHistoryRing(w, s.ring);
    w.u64(s.pathHist);
    putRng(w, s.rng);
    w.i64(s.providerTable);
    w.i64(s.altTable);
    w.b(s.providerPred);
    w.b(s.altPred);
    w.b(s.lastPrediction);
    w.u64(s.lastPc);
    w.u64(s.numLookups);
    w.u64(s.numMispredicts);
}

void
deserializeSnapshot(BinReader &r, branch::Tage::Snapshot &s)
{
    getVec(r, s.base, 1,
           [](BinReader &rd, std::int8_t &c) { c = rd.i8(); });
    const std::size_t numTables = r.count(8);
    s.tables.clear();
    s.tables.resize(numTables);
    for (auto &table : s.tables) {
        getVec(r, table, 5, [](BinReader &rd, auto &e) {
            e.tag = rd.u16();
            e.ctr = rd.i8();
            e.useful = rd.u8();
            e.valid = rd.b();
        });
        if (!r.ok())
            return;
    }
    getFolds(r, s.foldIdx);
    getFolds(r, s.foldTag1);
    getFolds(r, s.foldTag2);
    getHistoryRing(r, s.ring);
    s.pathHist = r.u64();
    getRng(r, s.rng);
    s.providerTable = static_cast<int>(r.i64());
    s.altTable = static_cast<int>(r.i64());
    s.providerPred = r.b();
    s.altPred = r.b();
    s.lastPrediction = r.b();
    s.lastPc = r.u64();
    s.numLookups = r.u64();
    s.numMispredicts = r.u64();
}

void
serializeSnapshot(BinWriter &w, const branch::Ittage::Snapshot &s)
{
    putVec(w, s.base,
           [](BinWriter &wr, const Addr target) { wr.u64(target); });
    w.u64(s.tables.size());
    for (const auto &table : s.tables) {
        putVec(w, table, [](BinWriter &wr, const auto &e) {
            wr.b(e.valid);
            wr.u16(e.tag);
            wr.u64(e.target);
            wr.u8(e.conf);
            wr.u8(e.useful);
        });
    }
    putFolds(w, s.foldIdx);
    putFolds(w, s.foldTag);
    putHistoryRing(w, s.ring);
    putRng(w, s.rng);
    w.i64(s.providerTable);
    w.u64(s.lastPrediction);
    w.u64(s.lastPc);
    w.u64(s.numLookups);
    w.u64(s.numMispredicts);
}

void
deserializeSnapshot(BinReader &r, branch::Ittage::Snapshot &s)
{
    getVec(r, s.base, 8,
           [](BinReader &rd, Addr &target) { target = rd.u64(); });
    const std::size_t numTables = r.count(8);
    s.tables.clear();
    s.tables.resize(numTables);
    for (auto &table : s.tables) {
        getVec(r, table, 13, [](BinReader &rd, auto &e) {
            e.valid = rd.b();
            e.tag = rd.u16();
            e.target = rd.u64();
            e.conf = rd.u8();
            e.useful = rd.u8();
        });
        if (!r.ok())
            return;
    }
    getFolds(r, s.foldIdx);
    getFolds(r, s.foldTag);
    getHistoryRing(r, s.ring);
    getRng(r, s.rng);
    s.providerTable = static_cast<int>(r.i64());
    s.lastPrediction = r.u64();
    s.lastPc = r.u64();
    s.numLookups = r.u64();
    s.numMispredicts = r.u64();
}

void
serializeSnapshot(BinWriter &w, const branch::ReturnAddressStack::Snapshot &s)
{
    putVec(w, s.entries,
           [](BinWriter &wr, const Addr a) { wr.u64(a); });
    w.u64(s.top);
    w.u64(s.count);
}

void
deserializeSnapshot(BinReader &r, branch::ReturnAddressStack::Snapshot &s)
{
    getVec(r, s.entries, 8,
           [](BinReader &rd, Addr &a) { a = rd.u64(); });
    s.top = static_cast<std::size_t>(r.u64());
    s.count = static_cast<std::size_t>(r.u64());
    if (!r.ok())
        return;
    if ((s.entries.empty() && (s.top != 0 || s.count != 0)) ||
        (!s.entries.empty() &&
         (s.top >= s.entries.size() || s.count > s.entries.size()))) {
        r.fail();
    }
}

void
serializeSnapshot(BinWriter &w, const SimStats &s)
{
    std::uint32_t n = 0;
    forEachCounter(s, [&](std::string_view, std::uint64_t) { ++n; });
    w.u32(n);
    forEachCounter(s, [&](std::string_view name, std::uint64_t v) {
        w.u64(fnv1a64(name.data(), name.size()));
        w.u64(v);
    });
}

void
deserializeSnapshot(BinReader &r, SimStats &s)
{
    // Hash -> name, from the *current* counter set: a stream written
    // by a binary with different counters fails to match and reads
    // as corrupt (i.e. a store miss), which is exactly the contract.
    std::vector<std::pair<std::uint64_t, std::string>> names;
    forEachCounter(SimStats{},
                   [&](std::string_view name, std::uint64_t) {
                       names.emplace_back(
                           fnv1a64(name.data(), name.size()),
                           std::string(name));
                   });
    const std::uint32_t n = r.u32();
    if (!r.ok() || n != names.size()) {
        r.fail();
        return;
    }
    s = SimStats{};
    for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint64_t h = r.u64();
        const std::uint64_t v = r.u64();
        if (!r.ok())
            return;
        const std::string *name = nullptr;
        for (const auto &[hash, counter] : names) {
            if (hash == h) {
                name = &counter;
                break;
            }
        }
        if (name == nullptr || !setCounter(s, *name, v)) {
            r.fail();
            return;
        }
    }
}

void
serializeSnapshot(BinWriter &w, const Core::Snapshot &s)
{
    serializeSnapshot(w, s.memory);
    serializeSnapshot(w, s.memdep);
    serializeSnapshot(w, s.tage);
    serializeSnapshot(w, s.ittage);
    serializeSnapshot(w, s.ras);

    w.u64(s.now);
    w.u64(s.fetchIdx);
    w.u64(s.contextIdx);
    w.u64(s.fetchResumeCycle);
    w.b(s.fetchHalted);
    w.b(s.fetchFrozen);
    w.b(s.vpActive);
    w.u64(s.nextSeq);
    w.u64(s.nextToken);
    w.u64(s.committed);
    w.u64(s.issuedNotDone);

    const auto putInf = [](BinWriter &wr, const auto &e) {
        putInflight(wr, e);
    };
    putRing(w, s.rob, putInf);
    putRing(w, s.fetchBuf, putInf);
    putRing(w, s.paq, [](BinWriter &wr, const auto &e) {
        wr.u64(e.seq);
        wr.u64(e.addr);
    });
    const auto putMemQ = [](BinWriter &wr, const auto &e) {
        wr.u64(e.seq);
        wr.u64(e.addr);
        wr.u32(e.size);
    };
    putRing(w, s.ldq, putMemQ);
    putRing(w, s.stq, putMemQ);
    w.u32(s.iqCount);
    w.u64(s.specLoadsInFlight);
    for (const InstSeqNum seq : s.lastWriter)
        w.u64(seq);
    putMap(w, s.inflightLoadPcs,
           [](BinWriter &wr, const unsigned v) { wr.u32(v); });
    putMap(w, s.refetchStash, [](BinWriter &wr, const auto &v) {
        wr.u64(v.token);
        putPrediction(wr, v.pred);
    });

    serializeSnapshot(w, s.stats);
}

void
deserializeSnapshot(BinReader &r, Core::Snapshot &s)
{
    deserializeSnapshot(r, s.memory);
    deserializeSnapshot(r, s.memdep);
    deserializeSnapshot(r, s.tage);
    deserializeSnapshot(r, s.ittage);
    deserializeSnapshot(r, s.ras);

    s.now = r.u64();
    s.fetchIdx = r.u64();
    s.contextIdx = r.u64();
    s.fetchResumeCycle = r.u64();
    s.fetchHalted = r.b();
    s.fetchFrozen = r.b();
    s.vpActive = r.b();
    s.nextSeq = r.u64();
    s.nextToken = r.u64();
    s.committed = r.u64();
    s.issuedNotDone = r.u64();

    const auto getInf = [](BinReader &rd, auto &e) {
        getInflight(rd, e);
    };
    getRing(r, s.rob, getInf);
    getRing(r, s.fetchBuf, getInf);
    getRing(r, s.paq, [](BinReader &rd, auto &e) {
        e.seq = rd.u64();
        e.addr = rd.u64();
    });
    const auto getMemQ = [](BinReader &rd, auto &e) {
        e.seq = rd.u64();
        e.addr = rd.u64();
        e.size = rd.u32();
    };
    getRing(r, s.ldq, getMemQ);
    getRing(r, s.stq, getMemQ);
    s.iqCount = r.u32();
    s.specLoadsInFlight = r.u64();
    for (InstSeqNum &seq : s.lastWriter)
        seq = r.u64();
    getMap(r, s.inflightLoadPcs,
           [](BinReader &rd, unsigned &v) { v = rd.u32(); });
    getMap(r, s.refetchStash, [](BinReader &rd, auto &v) {
        v.token = rd.u64();
        getPrediction(rd, v.pred);
    });

    deserializeSnapshot(r, s.stats);
}

} // namespace pipe
} // namespace lvpsim
