/**
 * @file
 * Cycle-level, trace-driven out-of-order core model (paper Table III).
 *
 * The model is execute-at-fetch: architectural values come from the
 * trace; the core models timing only. It implements the value
 * prediction microarchitecture of the paper's Figure 1 - predictor
 * probe at fetch, VPE delivery to consumers, PAQ probes of the D-cache
 * on load-pipe bubbles for address predictions, validation when the
 * load executes, and flush-based misprediction recovery.
 *
 * Modeling notes (see DESIGN.md):
 *  - Fetch follows the correct path; a branch mispredict stalls fetch
 *    until the branch executes (wrong-path effects not modeled).
 *  - Branch predictors and global histories advance at first fetch of
 *    a trace index only, so re-fetched instructions after a value
 *    misprediction see a consistent (not rewound) history.
 *  - Stores write the cache model at execute; loads check the store
 *    queue for forwarding; a load that speculates past an unresolved
 *    older store to the same address triggers a memory-order flush,
 *    governed by the 21264-style wait-table predictor.
 */

#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>
#include <vector>

#include "branch/ittage.hh"
#include "branch/ras.hh"
#include "branch/tage.hh"
#include "common/flat_map.hh"
#include "common/ring_buffer.hh"
#include "common/types.hh"
#include "core/lvp_interface.hh"
#include "memory/hierarchy.hh"
#include "memory/memdep.hh"
#include "pipeline/core_config.hh"
#include "pipeline/sim_stats.hh"
#include "trace/instruction.hh"

namespace lvpsim
{
namespace pipe
{

/**
 * The architectural commit stream, one record per retired
 * instruction, in program order. Because the model is
 * execute-at-fetch, every field is architectural (from the trace) —
 * so two runs of the same trace through *any* predictor
 * configuration must produce bit-identical streams. The qa
 * differential harness hashes this stream across {no-VP, composite,
 * oracle} pipelines to catch squash/refetch bugs that would skip,
 * duplicate, or reorder commits.
 */
struct CommitRecord
{
    std::uint64_t traceIdx = 0;
    Addr pc = 0;
    trace::OpClass cls = trace::OpClass::Nop;
    Addr effAddr = 0;
    std::uint8_t memSize = 0;
    Value value = 0;
};

class Core
{
  public:
    /**
     * @param cfg core configuration
     * @param code the dynamic trace to run (must outlive the core)
     * @param vp the load value predictor (not owned; may be nullptr
     *        for the no-VP baseline)
     */
    Core(const CoreConfig &cfg,
         const std::vector<trace::MicroOp> &code,
         LoadValuePredictor *vp);

    /**
     * Simulate until the trace is exhausted (or @p max_instrs have
     * committed) and return the run statistics. May be called after
     * warmup() (or restoreState()); statistics then cover only the
     * measurement region.
     */
    SimStats run(std::uint64_t max_instrs = 0);

    /**
     * Run the first @p n instructions with value prediction disabled
     * — caches, TLB, branch predictors and the memory dependence
     * predictor train normally, but the VP is never probed, notified
     * or trained — then freeze fetch and drain the pipeline so the
     * machine is quiescent (empty ROB/queues) at the measurement
     * boundary. A subsequent run() measures from this point; the
     * post-warmup state can also be captured with saveState() and
     * replayed into other cores (see sim::CheckpointCache).
     */
    void warmup(std::uint64_t n);

    /**
     * Fast-forward @p n instructions *functionally*: no cycle loop,
     * no queues — the trace streams straight through the substrate,
     * training the caches, TLB and prefetcher (at commit order) and
     * the branch predictors (the exact first-fetch training sequence
     * fetchOne() performs, so TAGE/ITTAGE/RAS state matches a
     * detailed pass bit for bit). The value predictor and the memory
     * dependence predictor are untouched, and no cycles elapse.
     *
     * This is the sampled-simulation fast-forward primitive
     * (docs/sampling.md): an order of magnitude cheaper than
     * warmup(), at the cost of timing-dependent substrate effects
     * (out-of-order access interleaving, wrong-path fills). Requires
     * a quiescent machine (fresh, post-warmup or post-restore with
     * empty queues); leaves it quiescent.
     */
    void functionalWarmup(std::uint64_t n);

    /**
     * Run the in-flight window dry after an early run() stop: freeze
     * fetch, simulate until every issued instruction commits or
     * squashes, then abandon() any predictor tokens still parked in
     * the refetch stash (their instructions will never be re-fetched
     * on this core). Leaves the machine quiescent and the attached
     * predictor free of per-token state, so a shared predictor can
     * move on to another core — the sampled-run driver does this
     * between representative segments (docs/sampling.md).
     */
    void drain();

    /** Substrate statistics (caches, TLB, branch predictors). */
    void dumpSubstrateStats(std::ostream &os) const;

    /**
     * Observe every commit, in retirement order. Costs one branch
     * per retired instruction when unset; used by the qa
     * differential harness, not by benches.
     */
    using CommitHook = std::function<void(const CommitRecord &)>;
    void setCommitHook(CommitHook fn) { commitHook = std::move(fn); }

    /**
     * Observe long-running simulations: fn(total committed
     * instructions) fires every @p every committed instructions,
     * from both the cycle loop and functionalWarmup(). Costs one
     * predictable compare per cycle when unset (every == 0
     * uninstalls). Reporting only — never part of checkpoints or
     * results.
     */
    using ProgressHook = std::function<void(std::uint64_t)>;
    void setProgressHook(std::uint64_t every, ProgressHook fn);

  private:
    struct Inflight
    {
        std::uint32_t traceIdx = 0;
        InstSeqNum seq = 0;
        Cycle fetchCycle = 0;
        Cycle minIssueCycle = 0;
        Cycle doneCycle = 0;
        Cycle sleepUntil = 0; ///< dependency wake-up hint (issue scan)
        bool inIQ = false;
        bool issued = false;
        bool done = false;

        std::array<InstSeqNum, 3> depSeq{0, 0, 0};

        bool branchMispredicted = false;

        Prediction pred{};
        std::uint64_t token = 0;
        bool vpDelivered = false; ///< value reached the VPE
        Cycle vpReadyCycle = 0;
        bool vpWrong = false;
        bool paqPending = false;

        bool speculativeLoad = false; ///< issued past unresolved store
    };

    struct PaqEntry
    {
        InstSeqNum seq = 0;
        Addr addr = 0;
    };

    /** LDQ/STQ bookkeeping record (addresses known from the trace). */
    struct MemQEntry
    {
        InstSeqNum seq = 0;
        Addr addr = 0;
        unsigned size = 0;
    };

    const trace::MicroOp &opOf(const Inflight &f) const
    {
        return code[f.traceIdx];
    }

    /** The cycle loop shared by run() and warmup(); simulates until
     *  the trace is exhausted and the machine is empty, or @p
     *  commit_target total instructions have committed (0 = no cap). */
    void simulate(std::uint64_t commit_target);

    // Pipeline stages (called once per cycle, oldest work first).
    bool commitStage();
    bool completeStage();
    bool issueStage(unsigned &ls_used);
    bool paqStage(unsigned ls_used);
    bool dispatchStage();
    bool fetchStage();

    // Helpers.
    std::size_t robIndexOfSeq(InstSeqNum seq) const;
    Inflight *findBySeq(InstSeqNum seq);
    const Inflight *findBySeqConst(InstSeqNum seq) const;
    bool depsReady(Inflight &f) const;
    Cycle execLatency(const Inflight &f);
    void fetchOne();
    void squashYoungerThan(InstSeqNum oldest_squashed,
                           std::uint64_t new_fetch_idx);
    void rebuildRenameMap();
    void validateLoad(Inflight &f);
    void checkStoreOrderViolation(const Inflight &store);
    Cycle nextEventCycle() const;

    /**
     * Pipeline invariants, compiled in via LVPSIM_ASSERTIONS (see
     * common/check.hh). checkCycleInvariants is O(1) and runs every
     * cycle: structure occupancies never exceed their configured
     * capacities (ROB/IQ/LDQ/STQ/PAQ/fetch buffer). The O(window)
     * structural cross-checks (seq ordering, queue/ROB sync, IQ
     * recount) run every `fullCheckPeriod` cycles.
     */
    void checkCycleInvariants() const;
    void checkFullInvariants() const;
    static constexpr Cycle fullCheckPeriod = 1024;

    bool rangesOverlap(Addr a, unsigned asz, Addr b, unsigned bsz) const
    {
        return a < b + bsz && b < a + asz;
    }

    // lvplint: allow(state-snapshot) -- construction-time config, immutable
    CoreConfig cfg;
    // lvplint: allow(state-snapshot) -- trace reference, owned by caller
    const std::vector<trace::MicroOp> &code;
    // lvplint: allow(state-snapshot) -- external wiring, not model state
    LoadValuePredictor *vp;
    // lvplint: allow(state-snapshot) -- stateless sink for vp calls
    NullPredictor nullVp;

    mem::MemoryHierarchy memory;
    mem::MemDepPredictor memdep;
    branch::Tage tage;
    branch::Ittage ittage;
    branch::ReturnAddressStack ras;

    Cycle now = 0;
    std::uint64_t fetchIdx = 0;
    std::uint64_t contextIdx = 0; ///< history advanced for idx < this
    Cycle fetchResumeCycle = 0;
    bool fetchHalted = false; ///< mispredicted branch in flight
    bool fetchFrozen = false; ///< warmup drain: no new fetches
    bool vpActive = true;     ///< false during the warmup region
    InstSeqNum nextSeq = 1;
    std::uint64_t nextToken = 1;
    std::uint64_t committed = 0;
    std::uint64_t issuedNotDone = 0;

    // Pipeline queues: fixed-capacity rings sized from cfg in the
    // constructor, so the steady-state cycle loop never allocates
    // (see docs/performance.md).
    RingBuffer<Inflight> rob;
    RingBuffer<Inflight> fetchBuf;
    RingBuffer<PaqEntry> paq;
    RingBuffer<MemQEntry> ldq;
    RingBuffer<MemQEntry> stq;
    unsigned iqCount = 0;
    /// Issued loads that speculated past an unresolved older store
    /// and have not yet committed or squashed. Store issue only needs
    /// to scan the LDQ for order violations while this is non-zero.
    std::uint64_t specLoadsInFlight = 0;
    std::array<InstSeqNum, numArchRegs> lastWriter{};
    FlatMap<Addr, unsigned> inflightLoadPcs;

    /**
     * Predictions of squashed loads, keyed by trace index. Real
     * hardware checkpoints and restores the branch/path histories on
     * a flush, so a re-fetched load sees the same context and gets
     * the same prediction; we model that by reusing the first-fetch
     * prediction (and its live predictor token) instead of re-probing
     * with a polluted history.
     */
    struct StashedPrediction
    {
        std::uint64_t token = 0;
        Prediction pred{};
    };
    FlatMap<std::uint64_t, StashedPrediction> refetchStash;

    /**
     * Upper bound on in-flight instructions (ROB plus fetch buffer):
     * sizes inflightLoadPcs/refetchStash and bounds the predictor's
     * pending-snapshot count (every live token belongs to an
     * in-flight or stashed load).
     */
    std::size_t inflightWindow() const
    {
        return cfg.robSize + 2 * std::size_t(cfg.fetchWidth);
    }

    // lvplint: allow(state-snapshot) -- external wiring, not model state
    CommitHook commitHook;

    // Progress reporting (setProgressHook): external wiring plus a
    // cached next-fire threshold, none of it model state.
    // lvplint: allow(state-snapshot) -- external wiring, not model state
    ProgressHook progressHook;
    // lvplint: allow(state-snapshot) -- reporting cadence, not model state
    std::uint64_t progressEvery = 0;
    // Derived from progressEvery at install time and recomputed by
    // setProgressHook after any restore.
    std::uint64_t nextProgressAt =
        std::numeric_limits<std::uint64_t>::max();

    SimStats stats;

  public:
    /**
     * The complete mutable state of the core and its substrate
     * (memory hierarchy, branch predictors, queues, rename map,
     * statistics). restoreState() into a core built with the *same*
     * CoreConfig and trace resumes execution bit-identically; the
     * attached value predictor is external wiring and is not part of
     * the snapshot. See sim::SimCheckpoint.
     */
    struct Snapshot
    {
        mem::MemoryHierarchy::Snapshot memory;
        mem::MemDepPredictor::Snapshot memdep;
        branch::Tage::Snapshot tage;
        branch::Ittage::Snapshot ittage;
        branch::ReturnAddressStack::Snapshot ras;

        Cycle now = 0;
        std::uint64_t fetchIdx = 0;
        std::uint64_t contextIdx = 0;
        Cycle fetchResumeCycle = 0;
        bool fetchHalted = false;
        bool fetchFrozen = false;
        bool vpActive = true;
        InstSeqNum nextSeq = 1;
        std::uint64_t nextToken = 1;
        std::uint64_t committed = 0;
        std::uint64_t issuedNotDone = 0;

        RingBuffer<Inflight> rob;
        RingBuffer<Inflight> fetchBuf;
        RingBuffer<PaqEntry> paq;
        RingBuffer<MemQEntry> ldq;
        RingBuffer<MemQEntry> stq;
        unsigned iqCount = 0;
        std::uint64_t specLoadsInFlight = 0;
        std::array<InstSeqNum, numArchRegs> lastWriter{};
        FlatMap<Addr, unsigned> inflightLoadPcs;
        FlatMap<std::uint64_t, StashedPrediction> refetchStash;

        SimStats stats;
    };

    void saveState(Snapshot &s) const;
    void restoreState(const Snapshot &s);
};

} // namespace pipe
} // namespace lvpsim

