/**
 * @file
 * Memory dependence predictor "similar to Alpha 21264" (paper Table
 * III): a PC-indexed wait table. A load whose entry has the wait bit
 * set is held until all older stores have computed their addresses;
 * otherwise it speculates. A memory-order violation sets the bit; the
 * whole table is cleared periodically so stale conservatism decays.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace lvpsim
{
namespace mem
{

class MemDepPredictor
{
  public:
    explicit MemDepPredictor(std::size_t entries = 1024,
                             std::uint64_t clear_interval = 32768)
        : waitBits(entries, false), clearInterval(clear_interval)
    {}

    /** Should this load wait for older stores? */
    bool
    shouldWait(Addr pc)
    {
        if (++accesses % clearInterval == 0)
            std::fill(waitBits.begin(), waitBits.end(), false);
        return waitBits[index(pc)];
    }

    /** A speculating load was hit by an older store: train to wait. */
    void
    recordViolation(Addr pc)
    {
        waitBits[index(pc)] = true;
        ++numViolations;
    }

    std::uint64_t violations() const { return numViolations; }

  private:
    std::size_t index(Addr pc) const { return (pc >> 2) % waitBits.size(); }

    std::vector<bool> waitBits;
    // lvplint: allow(state-snapshot) -- construction-time config
    std::uint64_t clearInterval;
    std::uint64_t accesses = 0;
    std::uint64_t numViolations = 0;

  public:
    /** Mutable state only; clear interval comes from the constructor. */
    struct Snapshot
    {
        std::vector<bool> waitBits;
        std::uint64_t accesses = 0;
        std::uint64_t numViolations = 0;
    };

    void
    saveState(Snapshot &s) const
    {
        s.waitBits = waitBits;
        s.accesses = accesses;
        s.numViolations = numViolations;
    }

    void
    restoreState(const Snapshot &s)
    {
        waitBits = s.waitBits;
        accesses = s.accesses;
        numViolations = s.numViolations;
    }
};

} // namespace mem
} // namespace lvpsim

