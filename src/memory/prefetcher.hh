/**
 * @file
 * PC-indexed stride prefetcher (paper Table III: "stride-based
 * prefetchers"). Watches the demand stream and suggests block
 * addresses to prefetch into the cache it is attached to.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/bitutils.hh"
#include "common/types.hh"

namespace lvpsim
{
namespace mem
{

class StridePrefetcher
{
  public:
    explicit StridePrefetcher(std::size_t entries = 64,
                              unsigned degree = 2)
        : table(entries), prefetchDegree(degree)
    {}

    /**
     * Observe a demand access; fills @p out with up to degree
     * prefetch addresses (may be empty).
     */
    void
    observe(Addr pc, Addr addr, std::vector<Addr> &out)
    {
        out.clear();
        Entry &e = table[(pc >> 2) % table.size()];
        const std::uint16_t tag = std::uint16_t((pc >> 2) & 0x3ff);
        if (!e.valid || e.tag != tag) {
            e.valid = true;
            e.tag = tag;
            e.lastAddr = addr;
            e.stride = 0;
            e.conf = 0;
            return;
        }
        const std::int64_t stride =
            std::int64_t(addr) - std::int64_t(e.lastAddr);
        if (stride == e.stride && stride != 0) {
            if (e.conf < 3)
                ++e.conf;
        } else {
            e.conf = (stride == e.stride) ? e.conf : 0;
            e.stride = stride;
        }
        e.lastAddr = addr;
        if (e.conf >= 2 && e.stride != 0) {
            for (unsigned d = 1; d <= prefetchDegree; ++d)
                out.push_back(Addr(std::int64_t(addr) +
                                   std::int64_t(d) * e.stride));
        }
    }

    std::uint64_t issued() const { return numIssued; }
    void countIssued(std::uint64_t n) { numIssued += n; }

  private:
    struct Entry
    {
        bool valid = false;
        std::uint16_t tag = 0;
        Addr lastAddr = 0;
        std::int64_t stride = 0;
        std::uint8_t conf = 0;
    };

    std::vector<Entry> table;
    // lvplint: allow(state-snapshot) -- construction-time config
    unsigned prefetchDegree;
    std::uint64_t numIssued = 0;

  public:
    /** Mutable state only; degree comes from the constructor. */
    struct Snapshot
    {
        std::vector<Entry> table;
        std::uint64_t numIssued = 0;
    };

    void
    saveState(Snapshot &s) const
    {
        s.table = table;
        s.numIssued = numIssued;
    }

    void
    restoreState(const Snapshot &s)
    {
        table = s.table;
        numIssued = s.numIssued;
    }
};

} // namespace mem
} // namespace lvpsim

