/**
 * @file
 * Three-level cache hierarchy configured per the paper's Table III:
 *
 *   L1: split I/D, 64KB each, 4-way, 1-cycle (I) / 2-cycle (D), 64B
 *   L2: unified private, 512KB, 8-way, 16-cycle, 128B blocks
 *   L3: unified shared, 8MB, 16-way, 32-cycle, 128B blocks
 *   Memory: 200-cycle; 512-entry 8-way TLB; stride prefetchers
 */

#pragma once

#include <cstdint>
#include <vector>

#include "memory/cache.hh"
#include "memory/memdep.hh"
#include "memory/prefetcher.hh"
#include "memory/tlb.hh"

namespace lvpsim
{
namespace mem
{

struct HierarchyConfig
{
    CacheConfig l1i{"l1i", 64 * 1024, 4, 64, 1};
    CacheConfig l1d{"l1d", 64 * 1024, 4, 64, 2};
    CacheConfig l2{"l2", 512 * 1024, 8, 128, 16};
    CacheConfig l3{"l3", 8 * 1024 * 1024, 16, 128, 32};
    Cycle memoryLatency = 200;
    bool enablePrefetch = true;
};

struct AccessResult
{
    Cycle latency = 0;
    bool l1Hit = false;
    bool l2Hit = false;
    bool l3Hit = false;
};

class MemoryHierarchy
{
  public:
    explicit MemoryHierarchy(const HierarchyConfig &cfg =
                                 HierarchyConfig{});

    /** A demand data access (load or store) from the core. */
    AccessResult dataAccess(Addr pc, Addr addr, bool is_write);

    /**
     * A PAQ probe with a predicted address (paper Figure 1, step 3).
     * Hits return the D-cache latency; misses do NOT fill or escalate
     * (the paper's optional miss-prefetch, step 5, is disabled).
     */
    AccessResult paqProbe(Addr addr);

    /** Instruction fetch for a cache block. */
    Cycle instFetch(Addr pc);

    Cache &l1d() { return dcache; }
    Cache &l1i() { return icache; }
    Cache &l2() { return l2cache; }
    Cache &l3() { return l3cache; }
    Tlb &tlb() { return dtlb; }
    const Cache &l1dConst() const { return dcache; }
    const Cache &l2Const() const { return l2cache; }
    const Cache &l3Const() const { return l3cache; }
    const Tlb &tlbConst() const { return dtlb; }

    std::uint64_t prefetchesIssued() const { return pf.issued(); }

    /** Aggregate of every component's mutable state. */
    struct Snapshot
    {
        Cache::Snapshot icache;
        Cache::Snapshot dcache;
        Cache::Snapshot l2cache;
        Cache::Snapshot l3cache;
        Tlb::Snapshot dtlb;
        StridePrefetcher::Snapshot pf;
    };

    void
    saveState(Snapshot &s) const
    {
        icache.saveState(s.icache);
        dcache.saveState(s.dcache);
        l2cache.saveState(s.l2cache);
        l3cache.saveState(s.l3cache);
        dtlb.saveState(s.dtlb);
        pf.saveState(s.pf);
    }

    void
    restoreState(const Snapshot &s)
    {
        icache.restoreState(s.icache);
        dcache.restoreState(s.dcache);
        l2cache.restoreState(s.l2cache);
        l3cache.restoreState(s.l3cache);
        dtlb.restoreState(s.dtlb);
        pf.restoreState(s.pf);
    }

  private:
    /** Walk L2/L3/memory after an L1 miss; fills on the way back. */
    Cycle fillFromBeyond(Addr addr, AccessResult &res);

    // lvplint: allow(state-snapshot) -- construction-time config, immutable
    HierarchyConfig cfg;
    Cache icache;
    Cache dcache;
    Cache l2cache;
    Cache l3cache;
    Tlb dtlb;
    StridePrefetcher pf;
    // lvplint: allow(state-snapshot) -- scratch buffer, cleared per observe()
    std::vector<Addr> pfAddrs;
};

} // namespace mem
} // namespace lvpsim

