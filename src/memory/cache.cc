#include "memory/cache.hh"

namespace lvpsim
{
namespace mem
{

Cache::Cache(const CacheConfig &config) : cfg(config)
{
    lvp_assert(isPowerOf2(cfg.blockSize), "block size not pow2");
    blockShift = log2i(cfg.blockSize);
    const std::size_t num_blocks = cfg.sizeBytes / cfg.blockSize;
    lvp_assert(num_blocks % cfg.assoc == 0, "bad geometry");
    numSets = num_blocks / cfg.assoc;
    lvp_assert(isPowerOf2(numSets), "sets not pow2");
    lines.assign(num_blocks, Line{});
}

bool
Cache::probe(Addr addr)
{
    const std::size_t s = setOf(addr);
    const Addr tag = tagOf(addr);
    for (unsigned w = 0; w < cfg.assoc; ++w) {
        Line &l = lines[s * cfg.assoc + w];
        if (l.valid && l.tag == tag) {
            l.lastUse = ++useClock;
            ++numHits;
            return true;
        }
    }
    ++numMisses;
    return false;
}

bool
Cache::contains(Addr addr) const
{
    const std::size_t s = setOf(addr);
    const Addr tag = tagOf(addr);
    for (unsigned w = 0; w < cfg.assoc; ++w) {
        const Line &l = lines[s * cfg.assoc + w];
        if (l.valid && l.tag == tag)
            return true;
    }
    return false;
}

Addr
Cache::fill(Addr addr, bool dirty, bool *writeback)
{
    if (writeback)
        *writeback = false;
    const std::size_t s = setOf(addr);
    const Addr tag = tagOf(addr);
    Line *victim = nullptr;
    for (unsigned w = 0; w < cfg.assoc; ++w) {
        Line &l = lines[s * cfg.assoc + w];
        if (l.valid && l.tag == tag) {
            // Already present (e.g. racing prefetch); just update.
            l.dirty = l.dirty || dirty;
            l.lastUse = ++useClock;
            return 0;
        }
        if (!l.valid) {
            if (!victim || victim->valid)
                victim = &l;
        } else if (!victim ||
                   (victim->valid && l.lastUse < victim->lastUse)) {
            victim = &l;
        }
    }
    Addr evicted = 0;
    if (victim->valid && victim->dirty) {
        if (writeback)
            *writeback = true;
        evicted = victim->tag << blockShift;
    }
    victim->valid = true;
    victim->dirty = dirty;
    victim->tag = tag;
    victim->lastUse = ++useClock;
    return evicted;
}

void
Cache::setDirty(Addr addr)
{
    const std::size_t s = setOf(addr);
    const Addr tag = tagOf(addr);
    for (unsigned w = 0; w < cfg.assoc; ++w) {
        Line &l = lines[s * cfg.assoc + w];
        if (l.valid && l.tag == tag) {
            l.dirty = true;
            return;
        }
    }
}

void
Cache::invalidate(Addr addr)
{
    const std::size_t s = setOf(addr);
    const Addr tag = tagOf(addr);
    for (unsigned w = 0; w < cfg.assoc; ++w) {
        Line &l = lines[s * cfg.assoc + w];
        if (l.valid && l.tag == tag) {
            l = Line{};
            return;
        }
    }
}

} // namespace mem
} // namespace lvpsim
