/**
 * @file
 * A timing-model set-associative cache with LRU replacement and
 * write-back/write-allocate policy. Tags only — data values live in
 * the trace's memory image; the pipeline needs hit/miss and latency.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bitutils.hh"
#include "common/logging.hh"
#include "common/types.hh"

namespace lvpsim
{
namespace mem
{

struct CacheConfig
{
    std::string name = "cache";
    std::size_t sizeBytes = 64 * 1024;
    unsigned assoc = 4;
    unsigned blockSize = 64;
    Cycle accessLatency = 2;
};

class Cache
{
  public:
    explicit Cache(const CacheConfig &cfg);

    /**
     * Probe for a block; on hit, update LRU. Does NOT fill.
     * @return true on hit.
     */
    bool probe(Addr addr);

    /** Peek without LRU update (used by the PAQ bubble model). */
    bool contains(Addr addr) const;

    /**
     * Fill the block for @p addr, evicting LRU if needed.
     * @param dirty mark the filled block dirty (write allocate)
     * @param[out] writeback set true if a dirty block was evicted
     * @return the evicted block address (valid only when *writeback)
     */
    Addr fill(Addr addr, bool dirty, bool *writeback);

    /** Mark an existing block dirty (store hit). */
    void setDirty(Addr addr);

    /** Invalidate a block if present. */
    void invalidate(Addr addr);

    const CacheConfig &config() const { return cfg; }
    Cycle latency() const { return cfg.accessLatency; }

    std::uint64_t hits() const { return numHits; }
    std::uint64_t misses() const { return numMisses; }

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        Addr tag = 0;
        std::uint64_t lastUse = 0;
    };

    Addr blockAddr(Addr a) const { return a & ~Addr(cfg.blockSize - 1); }
    std::size_t setOf(Addr a) const
    {
        return (a >> blockShift) & (numSets - 1);
    }
    Addr tagOf(Addr a) const { return a >> blockShift; }

    // lvplint: allow(state-snapshot) -- construction-time config, immutable
    CacheConfig cfg;
    // lvplint: allow(state-snapshot) -- derived from cfg, immutable
    unsigned blockShift;
    // lvplint: allow(state-snapshot) -- derived from cfg, immutable
    std::size_t numSets;
    std::vector<Line> lines;
    std::uint64_t useClock = 0;
    std::uint64_t numHits = 0;
    std::uint64_t numMisses = 0;

  public:
    /** Mutable state only; geometry comes from the owning config. */
    struct Snapshot
    {
        std::vector<Line> lines;
        std::uint64_t useClock = 0;
        std::uint64_t numHits = 0;
        std::uint64_t numMisses = 0;
    };

    void
    saveState(Snapshot &s) const
    {
        s.lines = lines;
        s.useClock = useClock;
        s.numHits = numHits;
        s.numMisses = numMisses;
    }

    void
    restoreState(const Snapshot &s)
    {
        lines = s.lines;
        useClock = s.useClock;
        numHits = s.numHits;
        numMisses = s.numMisses;
    }
};

} // namespace mem
} // namespace lvpsim

