#include "memory/hierarchy.hh"

namespace lvpsim
{
namespace mem
{

MemoryHierarchy::MemoryHierarchy(const HierarchyConfig &config)
    : cfg(config), icache(cfg.l1i), dcache(cfg.l1d), l2cache(cfg.l2),
      l3cache(cfg.l3)
{
}

Cycle
MemoryHierarchy::fillFromBeyond(Addr addr, AccessResult &res)
{
    Cycle lat = 0;
    bool wb = false;
    if (l2cache.probe(addr)) {
        res.l2Hit = true;
        lat += l2cache.latency();
    } else if (l3cache.probe(addr)) {
        res.l3Hit = true;
        lat += l2cache.latency() + l3cache.latency();
        l2cache.fill(addr, false, &wb);
    } else {
        lat += l2cache.latency() + l3cache.latency() +
               cfg.memoryLatency;
        l3cache.fill(addr, false, &wb);
        l2cache.fill(addr, false, &wb);
    }
    return lat;
}

AccessResult
MemoryHierarchy::dataAccess(Addr pc, Addr addr, bool is_write)
{
    AccessResult res;
    res.latency = dtlb.access(addr);
    res.latency += dcache.latency();

    if (dcache.probe(addr)) {
        res.l1Hit = true;
        if (is_write)
            dcache.setDirty(addr);
    } else {
        res.latency += fillFromBeyond(addr, res);
        bool wb = false;
        const Addr evicted = dcache.fill(addr, is_write, &wb);
        if (wb) {
            // Write-back into L2 (timing-free; tags only).
            bool wb2 = false;
            l2cache.fill(evicted, true, &wb2);
            if (wb2)
                l3cache.fill(evicted, true, nullptr);
        }
    }

    if (cfg.enablePrefetch) {
        pf.observe(pc, addr, pfAddrs);
        for (Addr a : pfAddrs) {
            // Prefetches fill L2 (and train no further).
            if (!l2cache.contains(a)) {
                bool wb = false;
                l2cache.fill(a, false, &wb);
                pf.countIssued(1);
            }
        }
    }
    return res;
}

AccessResult
MemoryHierarchy::paqProbe(Addr addr)
{
    AccessResult res;
    res.latency = dcache.latency();
    if (dcache.contains(addr))
        res.l1Hit = true;
    return res;
}

Cycle
MemoryHierarchy::instFetch(Addr pc)
{
    Cycle lat = icache.latency();
    if (!icache.probe(pc)) {
        bool wb = false;
        if (l2cache.probe(pc)) {
            lat += l2cache.latency();
        } else if (l3cache.probe(pc)) {
            lat += l2cache.latency() + l3cache.latency();
            l2cache.fill(pc, false, &wb);
        } else {
            lat += l2cache.latency() + l3cache.latency() +
                   cfg.memoryLatency;
            l3cache.fill(pc, false, &wb);
            l2cache.fill(pc, false, &wb);
        }
        icache.fill(pc, false, &wb);
    }
    return lat;
}

} // namespace mem
} // namespace lvpsim
