/**
 * @file
 * Data TLB (paper Table III: 512-entry, 8-way set-associative). A miss
 * costs a fixed page-walk latency.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/bitutils.hh"
#include "common/types.hh"

namespace lvpsim
{
namespace mem
{

class Tlb
{
  public:
    explicit Tlb(std::size_t entries = 512, unsigned assoc = 8,
                 unsigned page_shift = 12, Cycle walk_latency = 20)
        : numSets(entries / assoc), numWays(assoc),
          pageShift(page_shift), walkLat(walk_latency),
          sets(entries)
    {}

    /** Touch the page of @p addr; returns extra latency (0 on hit). */
    Cycle
    access(Addr addr)
    {
        const Addr vpn = addr >> pageShift;
        const std::size_t s = vpn & (numSets - 1);
        for (unsigned w = 0; w < numWays; ++w) {
            Way &e = sets[s * numWays + w];
            if (e.valid && e.vpn == vpn) {
                e.lastUse = ++useClock;
                ++numHits;
                return 0;
            }
        }
        ++numMisses;
        Way *victim = &sets[s * numWays];
        for (unsigned w = 0; w < numWays; ++w) {
            Way &e = sets[s * numWays + w];
            if (!e.valid) {
                victim = &e;
                break;
            }
            if (e.lastUse < victim->lastUse)
                victim = &e;
        }
        victim->valid = true;
        victim->vpn = vpn;
        victim->lastUse = ++useClock;
        return walkLat;
    }

    std::uint64_t hits() const { return numHits; }
    std::uint64_t misses() const { return numMisses; }

  private:
    struct Way
    {
        bool valid = false;
        Addr vpn = 0;
        std::uint64_t lastUse = 0;
    };

    // lvplint: allow(state-snapshot) -- construction-time geometry
    std::size_t numSets;
    // lvplint: allow(state-snapshot) -- construction-time geometry
    unsigned numWays;
    // lvplint: allow(state-snapshot) -- construction-time geometry
    unsigned pageShift;
    // lvplint: allow(state-snapshot) -- construction-time latency
    Cycle walkLat;
    std::vector<Way> sets;
    std::uint64_t useClock = 0;
    std::uint64_t numHits = 0;
    std::uint64_t numMisses = 0;

  public:
    /** Mutable state only; geometry comes from the constructor. */
    struct Snapshot
    {
        std::vector<Way> sets;
        std::uint64_t useClock = 0;
        std::uint64_t numHits = 0;
        std::uint64_t numMisses = 0;
    };

    void
    saveState(Snapshot &s) const
    {
        s.sets = sets;
        s.useClock = useClock;
        s.numHits = numHits;
        s.numMisses = numMisses;
    }

    void
    restoreState(const Snapshot &s)
    {
        sets = s.sets;
        useClock = s.useClock;
        numHits = s.numHits;
        numMisses = s.numMisses;
    }
};

} // namespace mem
} // namespace lvpsim

