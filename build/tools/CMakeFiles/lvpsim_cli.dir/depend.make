# Empty dependencies file for lvpsim_cli.
# This may be replaced when dependencies are built.
