file(REMOVE_RECURSE
  "CMakeFiles/lvpsim_cli.dir/lvpsim_cli.cc.o"
  "CMakeFiles/lvpsim_cli.dir/lvpsim_cli.cc.o.d"
  "lvpsim_cli"
  "lvpsim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lvpsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
