# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_smoke_run "/root/repo/build/tools/lvpsim_cli" "--workload" "memset_loop" "--instrs" "5000")
set_tests_properties(cli_smoke_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_smoke_list "/root/repo/build/tools/lvpsim_cli" "--list")
set_tests_properties(cli_smoke_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_smoke_classify "/root/repo/build/tools/lvpsim_cli" "--workload" "hash_probe" "--classify" "--instrs" "5000")
set_tests_properties(cli_smoke_classify PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_smoke_eves "/root/repo/build/tools/lvpsim_cli" "--workload" "const_table" "--predictor" "eves8k" "--instrs" "5000")
set_tests_properties(cli_smoke_eves PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_rejects_unknown_workload "/root/repo/build/tools/lvpsim_cli" "--workload" "no_such_thing")
set_tests_properties(cli_rejects_unknown_workload PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
