# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "memset_loop" "5000")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;12;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_explore_budget "/root/repo/build/examples/explore_budget" "memset_loop")
set_tests_properties(example_explore_budget PROPERTIES  ENVIRONMENT "LVPSIM_INSTRS=5000" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_custom_workload "/root/repo/build/examples/custom_workload")
set_tests_properties(example_custom_workload PROPERTIES  ENVIRONMENT "LVPSIM_INSTRS=5000" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_pipeline_anatomy "/root/repo/build/examples/pipeline_anatomy" "memset_loop")
set_tests_properties(example_pipeline_anatomy PROPERTIES  ENVIRONMENT "LVPSIM_INSTRS=5000" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
