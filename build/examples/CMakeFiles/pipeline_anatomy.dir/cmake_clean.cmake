file(REMOVE_RECURSE
  "CMakeFiles/pipeline_anatomy.dir/pipeline_anatomy.cpp.o"
  "CMakeFiles/pipeline_anatomy.dir/pipeline_anatomy.cpp.o.d"
  "pipeline_anatomy"
  "pipeline_anatomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_anatomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
