file(REMOVE_RECURSE
  "CMakeFiles/explore_budget.dir/explore_budget.cpp.o"
  "CMakeFiles/explore_budget.dir/explore_budget.cpp.o.d"
  "explore_budget"
  "explore_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explore_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
