# Empty compiler generated dependencies file for explore_budget.
# This may be replaced when dependencies are built.
