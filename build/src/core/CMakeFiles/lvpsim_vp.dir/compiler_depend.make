# Empty compiler generated dependencies file for lvpsim_vp.
# This may be replaced when dependencies are built.
