file(REMOVE_RECURSE
  "liblvpsim_vp.a"
)
