file(REMOVE_RECURSE
  "CMakeFiles/lvpsim_vp.dir/composite.cc.o"
  "CMakeFiles/lvpsim_vp.dir/composite.cc.o.d"
  "CMakeFiles/lvpsim_vp.dir/eves.cc.o"
  "CMakeFiles/lvpsim_vp.dir/eves.cc.o.d"
  "CMakeFiles/lvpsim_vp.dir/oracle.cc.o"
  "CMakeFiles/lvpsim_vp.dir/oracle.cc.o.d"
  "liblvpsim_vp.a"
  "liblvpsim_vp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lvpsim_vp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
