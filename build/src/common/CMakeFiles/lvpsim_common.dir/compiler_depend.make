# Empty compiler generated dependencies file for lvpsim_common.
# This may be replaced when dependencies are built.
