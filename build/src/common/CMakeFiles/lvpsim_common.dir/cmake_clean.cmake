file(REMOVE_RECURSE
  "CMakeFiles/lvpsim_common.dir/logging.cc.o"
  "CMakeFiles/lvpsim_common.dir/logging.cc.o.d"
  "CMakeFiles/lvpsim_common.dir/stats.cc.o"
  "CMakeFiles/lvpsim_common.dir/stats.cc.o.d"
  "liblvpsim_common.a"
  "liblvpsim_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lvpsim_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
