file(REMOVE_RECURSE
  "liblvpsim_common.a"
)
