file(REMOVE_RECURSE
  "CMakeFiles/lvpsim_pipe.dir/core.cc.o"
  "CMakeFiles/lvpsim_pipe.dir/core.cc.o.d"
  "CMakeFiles/lvpsim_pipe.dir/sim_stats.cc.o"
  "CMakeFiles/lvpsim_pipe.dir/sim_stats.cc.o.d"
  "liblvpsim_pipe.a"
  "liblvpsim_pipe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lvpsim_pipe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
