file(REMOVE_RECURSE
  "liblvpsim_pipe.a"
)
