# Empty dependencies file for lvpsim_pipe.
# This may be replaced when dependencies are built.
