# Empty compiler generated dependencies file for lvpsim_branch.
# This may be replaced when dependencies are built.
