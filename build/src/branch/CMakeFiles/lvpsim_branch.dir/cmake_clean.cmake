file(REMOVE_RECURSE
  "CMakeFiles/lvpsim_branch.dir/ittage.cc.o"
  "CMakeFiles/lvpsim_branch.dir/ittage.cc.o.d"
  "CMakeFiles/lvpsim_branch.dir/tage.cc.o"
  "CMakeFiles/lvpsim_branch.dir/tage.cc.o.d"
  "liblvpsim_branch.a"
  "liblvpsim_branch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lvpsim_branch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
