file(REMOVE_RECURSE
  "liblvpsim_branch.a"
)
