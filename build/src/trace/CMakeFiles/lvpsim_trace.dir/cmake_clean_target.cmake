file(REMOVE_RECURSE
  "liblvpsim_trace.a"
)
