
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/asm_emitter.cc" "src/trace/CMakeFiles/lvpsim_trace.dir/asm_emitter.cc.o" "gcc" "src/trace/CMakeFiles/lvpsim_trace.dir/asm_emitter.cc.o.d"
  "/root/repo/src/trace/kernels/kernels_bigcode.cc" "src/trace/CMakeFiles/lvpsim_trace.dir/kernels/kernels_bigcode.cc.o" "gcc" "src/trace/CMakeFiles/lvpsim_trace.dir/kernels/kernels_bigcode.cc.o.d"
  "/root/repo/src/trace/kernels/kernels_context.cc" "src/trace/CMakeFiles/lvpsim_trace.dir/kernels/kernels_context.cc.o" "gcc" "src/trace/CMakeFiles/lvpsim_trace.dir/kernels/kernels_context.cc.o.d"
  "/root/repo/src/trace/kernels/kernels_irregular.cc" "src/trace/CMakeFiles/lvpsim_trace.dir/kernels/kernels_irregular.cc.o" "gcc" "src/trace/CMakeFiles/lvpsim_trace.dir/kernels/kernels_irregular.cc.o.d"
  "/root/repo/src/trace/kernels/kernels_regular.cc" "src/trace/CMakeFiles/lvpsim_trace.dir/kernels/kernels_regular.cc.o" "gcc" "src/trace/CMakeFiles/lvpsim_trace.dir/kernels/kernels_regular.cc.o.d"
  "/root/repo/src/trace/kernels/kernels_streams.cc" "src/trace/CMakeFiles/lvpsim_trace.dir/kernels/kernels_streams.cc.o" "gcc" "src/trace/CMakeFiles/lvpsim_trace.dir/kernels/kernels_streams.cc.o.d"
  "/root/repo/src/trace/kernels/kernels_value.cc" "src/trace/CMakeFiles/lvpsim_trace.dir/kernels/kernels_value.cc.o" "gcc" "src/trace/CMakeFiles/lvpsim_trace.dir/kernels/kernels_value.cc.o.d"
  "/root/repo/src/trace/kernels/memset_loop.cc" "src/trace/CMakeFiles/lvpsim_trace.dir/kernels/memset_loop.cc.o" "gcc" "src/trace/CMakeFiles/lvpsim_trace.dir/kernels/memset_loop.cc.o.d"
  "/root/repo/src/trace/trace_io.cc" "src/trace/CMakeFiles/lvpsim_trace.dir/trace_io.cc.o" "gcc" "src/trace/CMakeFiles/lvpsim_trace.dir/trace_io.cc.o.d"
  "/root/repo/src/trace/workloads.cc" "src/trace/CMakeFiles/lvpsim_trace.dir/workloads.cc.o" "gcc" "src/trace/CMakeFiles/lvpsim_trace.dir/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lvpsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
