# Empty compiler generated dependencies file for lvpsim_trace.
# This may be replaced when dependencies are built.
