file(REMOVE_RECURSE
  "CMakeFiles/lvpsim_trace.dir/asm_emitter.cc.o"
  "CMakeFiles/lvpsim_trace.dir/asm_emitter.cc.o.d"
  "CMakeFiles/lvpsim_trace.dir/kernels/kernels_bigcode.cc.o"
  "CMakeFiles/lvpsim_trace.dir/kernels/kernels_bigcode.cc.o.d"
  "CMakeFiles/lvpsim_trace.dir/kernels/kernels_context.cc.o"
  "CMakeFiles/lvpsim_trace.dir/kernels/kernels_context.cc.o.d"
  "CMakeFiles/lvpsim_trace.dir/kernels/kernels_irregular.cc.o"
  "CMakeFiles/lvpsim_trace.dir/kernels/kernels_irregular.cc.o.d"
  "CMakeFiles/lvpsim_trace.dir/kernels/kernels_regular.cc.o"
  "CMakeFiles/lvpsim_trace.dir/kernels/kernels_regular.cc.o.d"
  "CMakeFiles/lvpsim_trace.dir/kernels/kernels_streams.cc.o"
  "CMakeFiles/lvpsim_trace.dir/kernels/kernels_streams.cc.o.d"
  "CMakeFiles/lvpsim_trace.dir/kernels/kernels_value.cc.o"
  "CMakeFiles/lvpsim_trace.dir/kernels/kernels_value.cc.o.d"
  "CMakeFiles/lvpsim_trace.dir/kernels/memset_loop.cc.o"
  "CMakeFiles/lvpsim_trace.dir/kernels/memset_loop.cc.o.d"
  "CMakeFiles/lvpsim_trace.dir/trace_io.cc.o"
  "CMakeFiles/lvpsim_trace.dir/trace_io.cc.o.d"
  "CMakeFiles/lvpsim_trace.dir/workloads.cc.o"
  "CMakeFiles/lvpsim_trace.dir/workloads.cc.o.d"
  "liblvpsim_trace.a"
  "liblvpsim_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lvpsim_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
