file(REMOVE_RECURSE
  "CMakeFiles/lvpsim_sim.dir/experiment.cc.o"
  "CMakeFiles/lvpsim_sim.dir/experiment.cc.o.d"
  "CMakeFiles/lvpsim_sim.dir/simulator.cc.o"
  "CMakeFiles/lvpsim_sim.dir/simulator.cc.o.d"
  "liblvpsim_sim.a"
  "liblvpsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lvpsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
