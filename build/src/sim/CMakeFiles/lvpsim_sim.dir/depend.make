# Empty dependencies file for lvpsim_sim.
# This may be replaced when dependencies are built.
