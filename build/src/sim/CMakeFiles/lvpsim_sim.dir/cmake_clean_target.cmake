file(REMOVE_RECURSE
  "liblvpsim_sim.a"
)
