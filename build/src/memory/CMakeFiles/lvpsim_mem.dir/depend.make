# Empty dependencies file for lvpsim_mem.
# This may be replaced when dependencies are built.
