file(REMOVE_RECURSE
  "CMakeFiles/lvpsim_mem.dir/cache.cc.o"
  "CMakeFiles/lvpsim_mem.dir/cache.cc.o.d"
  "CMakeFiles/lvpsim_mem.dir/hierarchy.cc.o"
  "CMakeFiles/lvpsim_mem.dir/hierarchy.cc.o.d"
  "liblvpsim_mem.a"
  "liblvpsim_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lvpsim_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
