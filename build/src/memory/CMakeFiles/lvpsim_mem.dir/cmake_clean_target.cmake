file(REMOVE_RECURSE
  "liblvpsim_mem.a"
)
