# Empty dependencies file for test_vp.
# This may be replaced when dependencies are built.
