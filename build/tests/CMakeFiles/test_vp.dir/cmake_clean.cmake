file(REMOVE_RECURSE
  "CMakeFiles/test_vp.dir/test_accuracy_monitor.cc.o"
  "CMakeFiles/test_vp.dir/test_accuracy_monitor.cc.o.d"
  "CMakeFiles/test_vp.dir/test_cap.cc.o"
  "CMakeFiles/test_vp.dir/test_cap.cc.o.d"
  "CMakeFiles/test_vp.dir/test_composite.cc.o"
  "CMakeFiles/test_vp.dir/test_composite.cc.o.d"
  "CMakeFiles/test_vp.dir/test_cvp.cc.o"
  "CMakeFiles/test_vp.dir/test_cvp.cc.o.d"
  "CMakeFiles/test_vp.dir/test_eves.cc.o"
  "CMakeFiles/test_vp.dir/test_eves.cc.o.d"
  "CMakeFiles/test_vp.dir/test_lvp.cc.o"
  "CMakeFiles/test_vp.dir/test_lvp.cc.o.d"
  "CMakeFiles/test_vp.dir/test_oracle.cc.o"
  "CMakeFiles/test_vp.dir/test_oracle.cc.o.d"
  "CMakeFiles/test_vp.dir/test_sap.cc.o"
  "CMakeFiles/test_vp.dir/test_sap.cc.o.d"
  "CMakeFiles/test_vp.dir/test_value_store.cc.o"
  "CMakeFiles/test_vp.dir/test_value_store.cc.o.d"
  "test_vp"
  "test_vp.pdb"
  "test_vp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
