
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_accuracy_monitor.cc" "tests/CMakeFiles/test_vp.dir/test_accuracy_monitor.cc.o" "gcc" "tests/CMakeFiles/test_vp.dir/test_accuracy_monitor.cc.o.d"
  "/root/repo/tests/test_cap.cc" "tests/CMakeFiles/test_vp.dir/test_cap.cc.o" "gcc" "tests/CMakeFiles/test_vp.dir/test_cap.cc.o.d"
  "/root/repo/tests/test_composite.cc" "tests/CMakeFiles/test_vp.dir/test_composite.cc.o" "gcc" "tests/CMakeFiles/test_vp.dir/test_composite.cc.o.d"
  "/root/repo/tests/test_cvp.cc" "tests/CMakeFiles/test_vp.dir/test_cvp.cc.o" "gcc" "tests/CMakeFiles/test_vp.dir/test_cvp.cc.o.d"
  "/root/repo/tests/test_eves.cc" "tests/CMakeFiles/test_vp.dir/test_eves.cc.o" "gcc" "tests/CMakeFiles/test_vp.dir/test_eves.cc.o.d"
  "/root/repo/tests/test_lvp.cc" "tests/CMakeFiles/test_vp.dir/test_lvp.cc.o" "gcc" "tests/CMakeFiles/test_vp.dir/test_lvp.cc.o.d"
  "/root/repo/tests/test_oracle.cc" "tests/CMakeFiles/test_vp.dir/test_oracle.cc.o" "gcc" "tests/CMakeFiles/test_vp.dir/test_oracle.cc.o.d"
  "/root/repo/tests/test_sap.cc" "tests/CMakeFiles/test_vp.dir/test_sap.cc.o" "gcc" "tests/CMakeFiles/test_vp.dir/test_sap.cc.o.d"
  "/root/repo/tests/test_value_store.cc" "tests/CMakeFiles/test_vp.dir/test_value_store.cc.o" "gcc" "tests/CMakeFiles/test_vp.dir/test_value_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/lvpsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lvpsim_vp.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/lvpsim_pipe.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/lvpsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/branch/CMakeFiles/lvpsim_branch.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/lvpsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lvpsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
