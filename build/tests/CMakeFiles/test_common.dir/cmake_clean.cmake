file(REMOVE_RECURSE
  "CMakeFiles/test_common.dir/test_bitutils.cc.o"
  "CMakeFiles/test_common.dir/test_bitutils.cc.o.d"
  "CMakeFiles/test_common.dir/test_mathutils.cc.o"
  "CMakeFiles/test_common.dir/test_mathutils.cc.o.d"
  "CMakeFiles/test_common.dir/test_random.cc.o"
  "CMakeFiles/test_common.dir/test_random.cc.o.d"
  "CMakeFiles/test_common.dir/test_sat_counter.cc.o"
  "CMakeFiles/test_common.dir/test_sat_counter.cc.o.d"
  "CMakeFiles/test_common.dir/test_stats.cc.o"
  "CMakeFiles/test_common.dir/test_stats.cc.o.d"
  "CMakeFiles/test_common.dir/test_tagged_table.cc.o"
  "CMakeFiles/test_common.dir/test_tagged_table.cc.o.d"
  "test_common"
  "test_common.pdb"
  "test_common[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
