
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_bitutils.cc" "tests/CMakeFiles/test_common.dir/test_bitutils.cc.o" "gcc" "tests/CMakeFiles/test_common.dir/test_bitutils.cc.o.d"
  "/root/repo/tests/test_mathutils.cc" "tests/CMakeFiles/test_common.dir/test_mathutils.cc.o" "gcc" "tests/CMakeFiles/test_common.dir/test_mathutils.cc.o.d"
  "/root/repo/tests/test_random.cc" "tests/CMakeFiles/test_common.dir/test_random.cc.o" "gcc" "tests/CMakeFiles/test_common.dir/test_random.cc.o.d"
  "/root/repo/tests/test_sat_counter.cc" "tests/CMakeFiles/test_common.dir/test_sat_counter.cc.o" "gcc" "tests/CMakeFiles/test_common.dir/test_sat_counter.cc.o.d"
  "/root/repo/tests/test_stats.cc" "tests/CMakeFiles/test_common.dir/test_stats.cc.o" "gcc" "tests/CMakeFiles/test_common.dir/test_stats.cc.o.d"
  "/root/repo/tests/test_tagged_table.cc" "tests/CMakeFiles/test_common.dir/test_tagged_table.cc.o" "gcc" "tests/CMakeFiles/test_common.dir/test_tagged_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/lvpsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lvpsim_vp.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/lvpsim_pipe.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/lvpsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/branch/CMakeFiles/lvpsim_branch.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/lvpsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lvpsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
