
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_cache.cc" "tests/CMakeFiles/test_uarch.dir/test_cache.cc.o" "gcc" "tests/CMakeFiles/test_uarch.dir/test_cache.cc.o.d"
  "/root/repo/tests/test_config_sweeps.cc" "tests/CMakeFiles/test_uarch.dir/test_config_sweeps.cc.o" "gcc" "tests/CMakeFiles/test_uarch.dir/test_config_sweeps.cc.o.d"
  "/root/repo/tests/test_core.cc" "tests/CMakeFiles/test_uarch.dir/test_core.cc.o" "gcc" "tests/CMakeFiles/test_uarch.dir/test_core.cc.o.d"
  "/root/repo/tests/test_core_limits.cc" "tests/CMakeFiles/test_uarch.dir/test_core_limits.cc.o" "gcc" "tests/CMakeFiles/test_uarch.dir/test_core_limits.cc.o.d"
  "/root/repo/tests/test_core_paq.cc" "tests/CMakeFiles/test_uarch.dir/test_core_paq.cc.o" "gcc" "tests/CMakeFiles/test_uarch.dir/test_core_paq.cc.o.d"
  "/root/repo/tests/test_hierarchy.cc" "tests/CMakeFiles/test_uarch.dir/test_hierarchy.cc.o" "gcc" "tests/CMakeFiles/test_uarch.dir/test_hierarchy.cc.o.d"
  "/root/repo/tests/test_ittage.cc" "tests/CMakeFiles/test_uarch.dir/test_ittage.cc.o" "gcc" "tests/CMakeFiles/test_uarch.dir/test_ittage.cc.o.d"
  "/root/repo/tests/test_memdep.cc" "tests/CMakeFiles/test_uarch.dir/test_memdep.cc.o" "gcc" "tests/CMakeFiles/test_uarch.dir/test_memdep.cc.o.d"
  "/root/repo/tests/test_ras.cc" "tests/CMakeFiles/test_uarch.dir/test_ras.cc.o" "gcc" "tests/CMakeFiles/test_uarch.dir/test_ras.cc.o.d"
  "/root/repo/tests/test_table3.cc" "tests/CMakeFiles/test_uarch.dir/test_table3.cc.o" "gcc" "tests/CMakeFiles/test_uarch.dir/test_table3.cc.o.d"
  "/root/repo/tests/test_tage.cc" "tests/CMakeFiles/test_uarch.dir/test_tage.cc.o" "gcc" "tests/CMakeFiles/test_uarch.dir/test_tage.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/lvpsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lvpsim_vp.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/lvpsim_pipe.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/lvpsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/branch/CMakeFiles/lvpsim_branch.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/lvpsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lvpsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
