file(REMOVE_RECURSE
  "CMakeFiles/test_uarch.dir/test_cache.cc.o"
  "CMakeFiles/test_uarch.dir/test_cache.cc.o.d"
  "CMakeFiles/test_uarch.dir/test_config_sweeps.cc.o"
  "CMakeFiles/test_uarch.dir/test_config_sweeps.cc.o.d"
  "CMakeFiles/test_uarch.dir/test_core.cc.o"
  "CMakeFiles/test_uarch.dir/test_core.cc.o.d"
  "CMakeFiles/test_uarch.dir/test_core_limits.cc.o"
  "CMakeFiles/test_uarch.dir/test_core_limits.cc.o.d"
  "CMakeFiles/test_uarch.dir/test_core_paq.cc.o"
  "CMakeFiles/test_uarch.dir/test_core_paq.cc.o.d"
  "CMakeFiles/test_uarch.dir/test_hierarchy.cc.o"
  "CMakeFiles/test_uarch.dir/test_hierarchy.cc.o.d"
  "CMakeFiles/test_uarch.dir/test_ittage.cc.o"
  "CMakeFiles/test_uarch.dir/test_ittage.cc.o.d"
  "CMakeFiles/test_uarch.dir/test_memdep.cc.o"
  "CMakeFiles/test_uarch.dir/test_memdep.cc.o.d"
  "CMakeFiles/test_uarch.dir/test_ras.cc.o"
  "CMakeFiles/test_uarch.dir/test_ras.cc.o.d"
  "CMakeFiles/test_uarch.dir/test_table3.cc.o"
  "CMakeFiles/test_uarch.dir/test_table3.cc.o.d"
  "CMakeFiles/test_uarch.dir/test_tage.cc.o"
  "CMakeFiles/test_uarch.dir/test_tage.cc.o.d"
  "test_uarch"
  "test_uarch.pdb"
  "test_uarch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
