file(REMOVE_RECURSE
  "CMakeFiles/fig03_component_scaling.dir/fig03_component_scaling.cc.o"
  "CMakeFiles/fig03_component_scaling.dir/fig03_component_scaling.cc.o.d"
  "fig03_component_scaling"
  "fig03_component_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_component_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
