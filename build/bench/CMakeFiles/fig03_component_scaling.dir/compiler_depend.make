# Empty compiler generated dependencies file for fig03_component_scaling.
# This may be replaced when dependencies are built.
