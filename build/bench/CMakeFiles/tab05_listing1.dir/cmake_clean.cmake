file(REMOVE_RECURSE
  "CMakeFiles/tab05_listing1.dir/tab05_listing1.cc.o"
  "CMakeFiles/tab05_listing1.dir/tab05_listing1.cc.o.d"
  "tab05_listing1"
  "tab05_listing1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab05_listing1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
