# Empty dependencies file for tab05_listing1.
# This may be replaced when dependencies are built.
