# Empty dependencies file for abl_shared_storage.
# This may be replaced when dependencies are built.
