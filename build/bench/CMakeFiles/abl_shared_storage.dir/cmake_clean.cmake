file(REMOVE_RECURSE
  "CMakeFiles/abl_shared_storage.dir/abl_shared_storage.cc.o"
  "CMakeFiles/abl_shared_storage.dir/abl_shared_storage.cc.o.d"
  "abl_shared_storage"
  "abl_shared_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_shared_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
