file(REMOVE_RECURSE
  "CMakeFiles/micro_uarch.dir/micro_uarch.cc.o"
  "CMakeFiles/micro_uarch.dir/micro_uarch.cc.o.d"
  "micro_uarch"
  "micro_uarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
