file(REMOVE_RECURSE
  "CMakeFiles/abl_flush_cost.dir/abl_flush_cost.cc.o"
  "CMakeFiles/abl_flush_cost.dir/abl_flush_cost.cc.o.d"
  "abl_flush_cost"
  "abl_flush_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_flush_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
