# Empty compiler generated dependencies file for abl_flush_cost.
# This may be replaced when dependencies are built.
