file(REMOVE_RECURSE
  "CMakeFiles/abl_confidence.dir/abl_confidence.cc.o"
  "CMakeFiles/abl_confidence.dir/abl_confidence.cc.o.d"
  "abl_confidence"
  "abl_confidence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_confidence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
