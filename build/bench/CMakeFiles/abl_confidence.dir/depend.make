# Empty dependencies file for abl_confidence.
# This may be replaced when dependencies are built.
