file(REMOVE_RECURSE
  "CMakeFiles/abl_selection_order.dir/abl_selection_order.cc.o"
  "CMakeFiles/abl_selection_order.dir/abl_selection_order.cc.o.d"
  "abl_selection_order"
  "abl_selection_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_selection_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
