# Empty dependencies file for abl_selection_order.
# This may be replaced when dependencies are built.
