file(REMOVE_RECURSE
  "CMakeFiles/fig06_accuracy_monitor.dir/fig06_accuracy_monitor.cc.o"
  "CMakeFiles/fig06_accuracy_monitor.dir/fig06_accuracy_monitor.cc.o.d"
  "fig06_accuracy_monitor"
  "fig06_accuracy_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_accuracy_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
