# Empty compiler generated dependencies file for fig06_accuracy_monitor.
# This may be replaced when dependencies are built.
