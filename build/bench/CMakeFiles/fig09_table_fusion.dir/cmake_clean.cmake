file(REMOVE_RECURSE
  "CMakeFiles/fig09_table_fusion.dir/fig09_table_fusion.cc.o"
  "CMakeFiles/fig09_table_fusion.dir/fig09_table_fusion.cc.o.d"
  "fig09_table_fusion"
  "fig09_table_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_table_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
