# Empty dependencies file for fig02_load_breakdown.
# This may be replaced when dependencies are built.
