# Empty compiler generated dependencies file for fig12_per_workload.
# This may be replaced when dependencies are built.
