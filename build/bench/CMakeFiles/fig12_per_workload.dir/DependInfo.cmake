
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig12_per_workload.cc" "bench/CMakeFiles/fig12_per_workload.dir/fig12_per_workload.cc.o" "gcc" "bench/CMakeFiles/fig12_per_workload.dir/fig12_per_workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/lvpsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lvpsim_vp.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/lvpsim_pipe.dir/DependInfo.cmake"
  "/root/repo/build/src/branch/CMakeFiles/lvpsim_branch.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/lvpsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/lvpsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lvpsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
