# Empty dependencies file for fig04_overlap.
# This may be replaced when dependencies are built.
