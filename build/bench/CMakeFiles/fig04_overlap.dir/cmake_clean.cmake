file(REMOVE_RECURSE
  "CMakeFiles/fig04_overlap.dir/fig04_overlap.cc.o"
  "CMakeFiles/fig04_overlap.dir/fig04_overlap.cc.o.d"
  "fig04_overlap"
  "fig04_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
