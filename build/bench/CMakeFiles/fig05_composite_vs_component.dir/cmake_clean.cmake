file(REMOVE_RECURSE
  "CMakeFiles/fig05_composite_vs_component.dir/fig05_composite_vs_component.cc.o"
  "CMakeFiles/fig05_composite_vs_component.dir/fig05_composite_vs_component.cc.o.d"
  "fig05_composite_vs_component"
  "fig05_composite_vs_component.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_composite_vs_component.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
