# Empty compiler generated dependencies file for fig05_composite_vs_component.
# This may be replaced when dependencies are built.
