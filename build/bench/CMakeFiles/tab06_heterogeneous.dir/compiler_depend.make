# Empty compiler generated dependencies file for tab06_heterogeneous.
# This may be replaced when dependencies are built.
