file(REMOVE_RECURSE
  "CMakeFiles/tab06_heterogeneous.dir/tab06_heterogeneous.cc.o"
  "CMakeFiles/tab06_heterogeneous.dir/tab06_heterogeneous.cc.o.d"
  "tab06_heterogeneous"
  "tab06_heterogeneous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab06_heterogeneous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
