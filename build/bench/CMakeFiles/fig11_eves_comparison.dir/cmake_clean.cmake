file(REMOVE_RECURSE
  "CMakeFiles/fig11_eves_comparison.dir/fig11_eves_comparison.cc.o"
  "CMakeFiles/fig11_eves_comparison.dir/fig11_eves_comparison.cc.o.d"
  "fig11_eves_comparison"
  "fig11_eves_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_eves_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
