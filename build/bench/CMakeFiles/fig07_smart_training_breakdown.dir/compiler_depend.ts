# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig07_smart_training_breakdown.
